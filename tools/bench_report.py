"""Emit a JSON perf snapshot of the Monte Carlo substrate.

Times the scalar reference loops against the vectorized batch engines on
benchmark-scale Table 1 workloads (no-CD schedule path and the CD
history-trie path, solo and fused across the dense CD grid) and Table 2
player workloads (deterministic scan / tree descent / backoff on the
per-player engine), plus the scenario sweep executors (serial vs process
pool on a Table-1-scale point grid; recorded as ``skipped`` on
single-core boxes, where a pool physically cannot win) and the
open-system driver (vectorized open-schedule loop vs the scalar
per-trial reference on a fixed Poisson load point), and writes a
``BENCH_*.json`` snapshot, so future PRs can track the performance
trajectory with a one-line diff instead of re-deriving numbers from
benchmark logs.

Usage (from the repository root)::

    PYTHONPATH=src python tools/bench_report.py [--output BENCH_BATCH.json]

The snapshot records the environment (python/numpy versions, CPU count -
the process-pool speedup is bounded by the cores available), the
workload configuration, per-substrate wall-clock seconds and the
speedups.  Timings are medians over ``--repeats`` runs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.analysis.montecarlo import (
    estimate_player_rounds,
    estimate_uniform_rounds,
)
from repro.channel import (
    AdaptiveAdversary,
    NoisyChannel,
    ObliviousJammer,
    with_collision_detection,
    without_collision_detection,
)
from repro.experiments.table1_nocd import entropy_sweep_distributions
from repro.protocols.sorted_probing import SortedProbingProtocol
from repro.protocols.willard import WillardProtocol
from repro.scenarios import run_sweep

# The sweep-executor and player-engine benchmark workloads are shared with
# the opt-in gates in benchmarks/; running as a script puts tools/ (not the
# repo root) on sys.path, so anchor the import at the repo root.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from benchmarks.opensys_workload import open_point, open_retry_point  # noqa: E402
from benchmarks.player_workload import N as PLAYER_N, player_cells  # noqa: E402
from benchmarks.sweep_workload import (  # noqa: E402
    CACHE_TRIALS_PER_POINT,
    RANGE_SETS,
    cache_sweep,
    cd_grid_sweep,
    executor_sweep,
    fused_player_sweep,
    fused_sweep,
)

N = 2**16
MAX_ROUNDS = 1024
SEED = 2021


def _median_seconds(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _measure(protocol, distribution, channel, trials: int, repeats: int):
    def estimate(batch: bool):
        return estimate_uniform_rounds(
            protocol,
            distribution,
            np.random.default_rng(SEED),
            channel=channel,
            trials=trials,
            max_rounds=MAX_ROUNDS,
            batch=batch,
        )

    scalar_seconds = _median_seconds(lambda: estimate(False), repeats)
    batch_seconds = _median_seconds(lambda: estimate(True), repeats)
    batched = estimate(True)
    return {
        "scalar_seconds": round(scalar_seconds, 6),
        "batch_seconds": round(batch_seconds, 6),
        "speedup": round(scalar_seconds / batch_seconds, 2),
        "success_rate": batched.success.rate,
        "mean_rounds": (
            None if not batched.any_successes else round(batched.rounds.mean, 4)
        ),
    }


def player_bench(trials: int, repeats: int) -> dict:
    """Scalar per-player loop vs the batch player engine, per Table-2 cell.

    The same cells the ``benchmarks/test_bench_player.py`` gate enforces
    (deterministic suffix-adversary scan, random-adversary tree descent,
    binary exponential backoff, all at n = 2^16).
    """
    measurements = {}
    for cell in player_cells(trials):
        def estimate(batch: bool, cell=cell):
            return estimate_player_rounds(
                cell.protocol,
                lambda rng: cell.adversary.checked_select(PLAYER_N, cell.k, rng),
                PLAYER_N,
                np.random.default_rng(SEED),
                channel=cell.channel,
                advice_function=cell.advice_function,
                trials=cell.trials,
                max_rounds=cell.max_rounds,
                batch=batch,
            )

        scalar_seconds = _median_seconds(lambda: estimate(False), repeats)
        batch_seconds = _median_seconds(lambda: estimate(True), repeats)
        batched = estimate(True)
        measurements[cell.name] = {
            "k": cell.k,
            "trials": cell.trials,
            "max_rounds": cell.max_rounds,
            "scalar_seconds": round(scalar_seconds, 6),
            "batch_seconds": round(batch_seconds, 6),
            "speedup": round(scalar_seconds / batch_seconds, 2),
            "success_rate": batched.success.rate,
            "mean_rounds": (
                None
                if not batched.any_successes
                else round(batched.rounds.mean, 4)
            ),
        }
    return measurements


def sweep_bench(trials: int, repeats: int, workers: int | None) -> dict:
    """Serial vs process-pool wall clock on an 8-point Table-1-scale sweep.

    Every point is an independent scenario (own seed), so the two
    executors return identical results; only the wall clock differs.
    The speedup is bounded by the machine's core count, so on a
    single-core box the section records ``skipped: true`` (with
    ``cpu_count``) instead of a physically meaningless ~1.0x reading -
    matching the gate in ``benchmarks/test_bench_sweep.py``, which also
    skips below two cores.
    """
    cpu_count = os.cpu_count()
    if (cpu_count or 1) < 2:
        return {
            "skipped": True,
            "cpu_count": cpu_count,
            "points": len(RANGE_SETS),
            "trials_per_point": trials,
            "reason": (
                "single-core machine: a process pool cannot beat serial "
                "without a second core, so timing it here would record "
                "noise as data"
            ),
        }
    sweep = executor_sweep(trials)
    if workers is None:
        workers = min(len(RANGE_SETS), cpu_count or 1)

    serial_seconds = _median_seconds(
        lambda: run_sweep(sweep, executor="serial"), repeats
    )
    process_seconds = _median_seconds(
        lambda: run_sweep(sweep, executor="process", max_workers=workers), repeats
    )
    return {
        "skipped": False,
        "points": len(RANGE_SETS),
        "trials_per_point": trials,
        "max_workers": workers,
        "cpu_count": cpu_count,
        "serial_seconds": round(serial_seconds, 6),
        "process_seconds": round(process_seconds, 6),
        "speedup": round(serial_seconds / process_seconds, 2),
    }


def sweep_cache_bench(repeats: int) -> dict:
    """Warm content-addressed cache vs cold re-simulation on the sweep dial.

    The ``sweep_cache`` section behind the >= 20x gate in
    ``benchmarks/test_bench_cache.py``: one cold run per repeat against a
    fresh cache directory (the honest populate cost, simulation plus
    store writes), then warm re-runs against the populated store through
    a fresh :class:`~repro.scenarios.store.ResultStore` instance each
    time - disk reads and key hashes, no in-memory LRU carryover, no
    engine invocations (``cache_hits == points`` is asserted, and the
    warm results are bit-identical to the cold run's).  Single-core by
    nature: a cache hit needs no parallelism to win.
    """
    import shutil
    import tempfile

    from repro.scenarios import ResultStore

    sweep = cache_sweep()
    points = len(sweep.points())
    work_dir = Path(tempfile.mkdtemp(prefix="bench-sweep-cache-"))
    try:
        cold_samples = []
        for repeat in range(repeats):
            cache_dir = work_dir / f"cold-{repeat}"
            start = time.perf_counter()
            cold = run_sweep(sweep, executor="serial", cache=cache_dir)
            cold_samples.append(time.perf_counter() - start)
        cold_seconds = statistics.median(cold_samples)

        warm_dir = work_dir / f"cold-{repeats - 1}"

        def warm_run():
            store = ResultStore(warm_dir)  # fresh LRU: hits come from disk
            result = run_sweep(sweep, executor="serial", cache=store)
            assert result.cache_hits == points, "warm run invoked an engine"
            return result

        warm_seconds = _median_seconds(warm_run, repeats)
        assert warm_run().results == cold.results
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)
    return {
        "points": points,
        "trials_per_point": CACHE_TRIALS_PER_POINT,
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "speedup": round(cold_seconds / warm_seconds, 2),
        "cache_hits": points,
    }


def history_bench(cd_willard: dict, repeats: int) -> dict:
    """The CD history-engine section: solo speedup plus the fused grid.

    ``cd_willard`` is the solo batch-vs-scalar measurement already taken
    for the ``measurements`` section (same workload as the >= 8x gate in
    ``benchmarks/test_bench_history.py``); the fused half times the
    dense CD grid (>= 3x gate) against the point-serial executor.
    """
    sweep = cd_grid_sweep()
    run_sweep(sweep, executor="fused")  # warm caches: steady-state timing
    serial_seconds = _median_seconds(
        lambda: run_sweep(sweep, executor="serial"), repeats
    )
    fused_seconds = _median_seconds(
        lambda: run_sweep(sweep, executor="fused"), repeats
    )
    points = sweep.points()
    return {
        "cd_willard": cd_willard,
        "cd_grid": {
            "points": len(points),
            "trials_per_point": points[0].trials,
            "serial_seconds": round(serial_seconds, 6),
            "fused_seconds": round(fused_seconds, 6),
            "speedup": round(serial_seconds / fused_seconds, 2),
        },
    }


def fused_bench(repeats: int) -> dict:
    """Fused executor vs point-serial batch on the dense single-core grids.

    The same grids the ``benchmarks/test_bench_sweep_fused.py`` gate
    enforces (>= 3x on the 32-point schedule grid; the 16-point player
    grid is informational): many small engine-bound points whose round
    loops fuse into one stacked run.  Unlike the process pool this axis
    needs no extra cores, so the snapshot is meaningful on 1-CPU boxes.
    """
    measurements = {}
    for name, sweep in (
        ("schedule_grid", fused_sweep()),
        ("player_grid", fused_player_sweep()),
    ):
        serial_seconds = _median_seconds(
            lambda sweep=sweep: run_sweep(sweep, executor="serial"), repeats
        )
        fused_seconds = _median_seconds(
            lambda sweep=sweep: run_sweep(sweep, executor="fused"), repeats
        )
        points = sweep.points()
        measurements[name] = {
            "points": len(points),
            "trials_per_point": points[0].trials,
            "serial_seconds": round(serial_seconds, 6),
            "fused_seconds": round(fused_seconds, 6),
            "speedup": round(serial_seconds / fused_seconds, 2),
        }
    return measurements



def adversary_bench(trials: int, repeats: int) -> dict:
    """Fault-model overhead on the batch engines.

    Times the faithful batch run against the same workload with each
    channel model injected (a deterministic budgeted jammer and a
    randomized noisy channel), on both the no-CD schedule engine and the
    CD history engine - the same cases the gate in
    ``benchmarks/test_bench_adversary.py`` enforces (noisy and jammed both
    within 2x of faithful).  ``overhead`` is the model's
    batch-seconds over the faithful batch-seconds.
    """
    distribution = entropy_sweep_distributions(N, quick=True)[1]
    engines = {
        "nocd_schedule": (
            lambda: SortedProbingProtocol(distribution, one_shot=False),
            without_collision_detection(),
        ),
        "cd_history": (lambda: WillardProtocol(N), with_collision_detection()),
    }
    models = {
        "faithful": None,
        "jam_oblivious": ObliviousJammer(budget=8),
        "noise": NoisyChannel(
            silence_to_collision=0.05,
            collision_to_silence=0.05,
            success_erasure=0.1,
        ),
    }
    section: dict = {}
    for engine_name, (make_protocol, base_channel) in engines.items():
        rows: dict = {}
        for model_name, model in models.items():
            channel = base_channel.with_model(model)

            def estimate():
                return estimate_uniform_rounds(
                    make_protocol(),
                    distribution,
                    np.random.default_rng(SEED),
                    channel=channel,
                    trials=trials,
                    max_rounds=MAX_ROUNDS,
                    batch=True,
                )

            seconds = _median_seconds(estimate, repeats)
            estimated = estimate()
            rows[model_name] = {
                "batch_seconds": round(seconds, 6),
                "success_rate": estimated.success.rate,
                "mean_rounds": (
                    None
                    if not estimated.any_successes
                    else round(estimated.rounds.mean, 4)
                ),
            }
            if model_name != "faithful":
                rows[model_name]["overhead"] = round(
                    seconds / rows["faithful"]["batch_seconds"], 2
                )
        section[engine_name] = rows
    return section


def adversary_adaptive(trials: int, repeats: int) -> dict:
    """Adaptive-adversary overhead on the batch engines.

    Mirrors :func:`adversary_bench` with the full-information
    ``jam-adaptive`` model.  An adaptive run is longer *by design* - the
    adversary buys extra rounds with every jam, and on the history
    engine greedy jamming also grows the memoized trie (each forced
    collision opens a fresh history branch), which is real extra work,
    not injection overhead.  The gate in
    ``benchmarks/test_bench_adversary.py`` therefore holds the adaptive
    batch within 3x of the faithful batch on each engine's
    representative strategy (greedy on the schedule engine, the
    scheduler strategy on the history engine).

    On a single-core box the section records ``skipped: true`` with the
    ``cpu_count`` context - the same convention as ``sweep_executor`` -
    instead of readings: the adaptive rows are the ones a fused sweep
    runs as serial singletons, and timing that serialisation without a
    second core records scheduler noise as data.
    """
    cpu_count = os.cpu_count()
    if (cpu_count or 1) < 2:
        return {
            "skipped": True,
            "cpu_count": cpu_count,
            "trials": trials,
            "reason": (
                "single-core machine: adaptive points run as serial "
                "singletons in fused sweeps, so single-core timings of "
                "that serialisation would record scheduler noise as data"
            ),
        }
    distribution = entropy_sweep_distributions(N, quick=True)[1]
    engines = {
        "nocd_schedule": (
            lambda: SortedProbingProtocol(distribution, one_shot=False),
            without_collision_detection(),
        ),
        "cd_history": (lambda: WillardProtocol(N), with_collision_detection()),
    }
    models = {
        "faithful": None,
        "adaptive_greedy": AdaptiveAdversary(budget=4, strategy="greedy"),
        "adaptive_scheduler": AdaptiveAdversary(
            budget=8, strategy="scheduler", mode="front"
        ),
        "adaptive_streak": AdaptiveAdversary(
            budget=8, strategy="streak", patience=2
        ),
    }
    section: dict = {"skipped": False, "cpu_count": cpu_count}
    for engine_name, (make_protocol, base_channel) in engines.items():
        rows: dict = {}
        for model_name, model in models.items():
            channel = base_channel.with_model(model)

            def estimate():
                return estimate_uniform_rounds(
                    make_protocol(),
                    distribution,
                    np.random.default_rng(SEED),
                    channel=channel,
                    trials=trials,
                    max_rounds=MAX_ROUNDS,
                    batch=True,
                )

            seconds = _median_seconds(estimate, repeats)
            estimated = estimate()
            rows[model_name] = {
                "batch_seconds": round(seconds, 6),
                "success_rate": estimated.success.rate,
                "mean_rounds": (
                    None
                    if not estimated.any_successes
                    else round(estimated.rounds.mean, 4)
                ),
            }
            if model_name != "faithful":
                rows[model_name]["overhead"] = round(
                    seconds / rows["faithful"]["batch_seconds"], 2
                )
        section[engine_name] = rows
    return section


def open_system_bench(repeats: int) -> dict:
    """Vectorized open-loop driver vs the scalar per-trial reference.

    The fixed load point of ``benchmarks/opensys_workload.py`` (decay
    serving Poisson arrivals below service capacity) - the same run the
    >= 5x gate in ``benchmarks/test_bench_opensys.py`` enforces, with the
    same bit-identity guarantee between the two engines.  Single-core.
    """
    from repro.scenarios import run_open_scenario

    spec = open_point()
    scalar_seconds = _median_seconds(
        lambda: run_open_scenario(spec.override({"batch": False})), repeats
    )
    vector_seconds = _median_seconds(lambda: run_open_scenario(spec), repeats)
    result = run_open_scenario(spec)
    summary = result.summary
    return {
        "protocol": spec.protocol.id,
        "arrivals": spec.arrivals.family,
        "offered_load": spec.arrivals.params.get("rate"),
        "trials": spec.trials,
        "rounds": spec.rounds,
        "warmup": spec.warmup,
        "engine": result.engine,
        "scalar_seconds": round(scalar_seconds, 6),
        "batch_seconds": round(vector_seconds, 6),
        "speedup": round(scalar_seconds / vector_seconds, 2),
        "p50": summary.p50,
        "p99": summary.p99,
        "throughput": round(summary.throughput, 6),
    }


def open_retry_bench(repeats: int) -> dict:
    """The open driver under a full request lifecycle: backoff + shed.

    The retry point of ``benchmarks/opensys_workload.py`` (graceful-
    degradation regime: timeouts on the tail, jittered capped backoff,
    occupancy shedding) - the same run the lifecycle gate in
    ``benchmarks/test_bench_opensys.py`` enforces.  ``overhead`` is the
    vectorized retry run against the identical traffic point with the
    zero policies (give-up / hard capacity), i.e. the plain driver's
    fast path; the gate caps it at 2x.
    """
    from repro.scenarios import run_open_scenario

    spec = open_retry_point()
    plain = spec.override(
        {
            "name": "bench-open-decay-retry-baseline",
            "retry": "give-up",
            "admission": "capacity",
        }
    )
    scalar_seconds = _median_seconds(
        lambda: run_open_scenario(spec.override({"batch": False})), repeats
    )
    vector_seconds = _median_seconds(lambda: run_open_scenario(spec), repeats)
    plain_seconds = _median_seconds(lambda: run_open_scenario(plain), repeats)
    result = run_open_scenario(spec)
    summary = result.summary
    return {
        "protocol": spec.protocol.id,
        "arrivals": spec.arrivals.family,
        "offered_load": spec.arrivals.params.get("rate"),
        "retry": spec.retry.to_dict(),
        "admission": spec.admission.to_dict(),
        "timeout": spec.timeout,
        "capacity": spec.capacity,
        "trials": spec.trials,
        "rounds": spec.rounds,
        "warmup": spec.warmup,
        "engine": result.engine,
        "scalar_seconds": round(scalar_seconds, 6),
        "batch_seconds": round(vector_seconds, 6),
        "plain_seconds": round(plain_seconds, 6),
        "speedup": round(scalar_seconds / vector_seconds, 2),
        "overhead": round(vector_seconds / plain_seconds, 2),
        "p50": summary.p50,
        "p99": summary.p99,
        "throughput": round(summary.throughput, 6),
        "retried": summary.retried,
        "abandoned": summary.abandoned,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_BATCH.json"),
        help="snapshot path (default: BENCH_BATCH.json in the cwd)",
    )
    parser.add_argument(
        "--trials", type=int, default=6000,
        help="Monte Carlo trials per measurement (default 6000)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats; the median is recorded (default 3)",
    )
    parser.add_argument(
        "--sweep-trials", type=int, default=200_000,
        help=(
            "trials per sweep point for the executor benchmark; heavy on "
            "purpose - each point must dwarf the pool's spawn cost "
            "(default 200000)"
        ),
    )
    parser.add_argument(
        "--sweep-workers", type=int, default=None,
        help="process-pool size for the sweep benchmark (default: cpu count)",
    )
    parser.add_argument(
        "--player-trials", type=int, default=2000,
        help=(
            "trials for the player-engine cells (default 2000; the backoff "
            "cell scales this down - the scalar loop there is costly)"
        ),
    )
    args = parser.parse_args(argv)

    distribution = entropy_sweep_distributions(N, quick=True)[1]
    measurements = {
        "nocd_sorted_probing": _measure(
            SortedProbingProtocol(distribution, one_shot=False),
            distribution,
            without_collision_detection(),
            args.trials,
            args.repeats,
        ),
        "cd_willard": _measure(
            WillardProtocol(N),
            distribution,
            with_collision_detection(),
            args.trials,
            args.repeats,
        ),
    }
    player_engine = player_bench(args.player_trials, args.repeats)
    history_engine = history_bench(measurements["cd_willard"], args.repeats)
    sweep_executor = sweep_bench(args.sweep_trials, args.repeats, args.sweep_workers)
    sweep_fused = fused_bench(args.repeats)
    sweep_cache = sweep_cache_bench(args.repeats)
    adversary = adversary_bench(args.trials, args.repeats)
    adaptive = adversary_adaptive(args.trials, args.repeats)
    open_system = open_system_bench(args.repeats)
    open_retry = open_retry_bench(args.repeats)
    snapshot = {
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "n": N,
            "trials": args.trials,
            "max_rounds": MAX_ROUNDS,
            "seed": SEED,
            "repeats": args.repeats,
            "workload": distribution.name,
        },
        "measurements": measurements,
        "player_engine": player_engine,
        "history_engine": history_engine,
        "sweep_executor": sweep_executor,
        "sweep_fused": sweep_fused,
        "sweep_cache": sweep_cache,
        "adversary": adversary,
        "adversary_adaptive": adaptive,
        "open_system": open_system,
        "open_retry": open_retry,
    }
    args.output.write_text(json.dumps(snapshot, indent=2) + "\n")
    for name, row in {**measurements, **player_engine}.items():
        print(
            f"{name}: scalar={row['scalar_seconds']:.3f}s "
            f"batch={row['batch_seconds']:.3f}s speedup={row['speedup']}x"
        )
    for engine_name, rows in adversary.items():
        overheads = ", ".join(
            f"{model_name}={row['overhead']}x"
            for model_name, row in rows.items()
            if model_name != "faithful"
        )
        print(f"adversary/{engine_name}: {overheads} over faithful")
    if adaptive.get("skipped"):
        print(
            f"adversary_adaptive: skipped ({adaptive['cpu_count']} cpu): "
            f"{adaptive['reason']}"
        )
    else:
        for engine_name in ("nocd_schedule", "cd_history"):
            rows = adaptive[engine_name]
            overheads = ", ".join(
                f"{model_name}={row['overhead']}x"
                for model_name, row in rows.items()
                if model_name != "faithful"
            )
            print(
                f"adversary_adaptive/{engine_name}: {overheads} over faithful"
            )
    cd_grid = history_engine["cd_grid"]
    print(
        f"history_engine/cd_grid: serial={cd_grid['serial_seconds']:.3f}s "
        f"fused={cd_grid['fused_seconds']:.3f}s "
        f"speedup={cd_grid['speedup']}x ({cd_grid['points']} points)"
    )
    if sweep_executor.get("skipped"):
        print(
            f"sweep_executor: skipped ({sweep_executor['cpu_count']} cpu): "
            f"{sweep_executor['reason']}"
        )
    else:
        print(
            f"sweep_executor: serial={sweep_executor['serial_seconds']:.3f}s "
            f"process={sweep_executor['process_seconds']:.3f}s "
            f"speedup={sweep_executor['speedup']}x "
            f"({sweep_executor['points']} points, "
            f"{sweep_executor['max_workers']} workers, "
            f"{sweep_executor['cpu_count']} cpu)"
        )
    for name, row in sweep_fused.items():
        print(
            f"sweep_fused/{name}: serial={row['serial_seconds']:.3f}s "
            f"fused={row['fused_seconds']:.3f}s speedup={row['speedup']}x "
            f"({row['points']} points)"
        )
    print(
        f"sweep_cache: cold={sweep_cache['cold_seconds']:.3f}s "
        f"warm={sweep_cache['warm_seconds']:.4f}s "
        f"speedup={sweep_cache['speedup']}x "
        f"({sweep_cache['points']} points, all cache hits)"
    )
    print(
        f"open_system: scalar={open_system['scalar_seconds']:.3f}s "
        f"vectorized={open_system['batch_seconds']:.3f}s "
        f"speedup={open_system['speedup']}x ({open_system['engine']}, "
        f"load {open_system['offered_load']})"
    )
    print(
        f"open_retry: scalar={open_retry['scalar_seconds']:.3f}s "
        f"vectorized={open_retry['batch_seconds']:.3f}s "
        f"speedup={open_retry['speedup']}x "
        f"overhead={open_retry['overhead']}x over plain "
        f"({open_retry['retried']} retried, "
        f"{open_retry['abandoned']} abandoned)"
    )
    print(f"snapshot written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
