"""Open-system engine benchmark: vectorized driver vs the scalar oracle.

The acceptance gate for the open-loop driver: on the fixed load point of
:mod:`benchmarks.opensys_workload` (decay serving Poisson arrivals below
service capacity), the vectorized open-schedule engine must run >= 5x
faster than the scalar per-trial reference loop - and, because both
consume identical per-trial seed streams, produce a **bit-identical**
latency store, not merely matching statistics.  Single-core, so the gate
never skips.
"""

from __future__ import annotations

import time

import pytest

from repro.opensys import ENGINE_OPEN_SCALAR, ENGINE_OPEN_SCHEDULE
from repro.scenarios import run_open_scenario

from .opensys_workload import TRIALS, open_point, open_retry_point

SPEEDUP_FLOOR = 5.0
#: The full request lifecycle (orbit, admission, timeout retries) may
#: cost at most this factor over the plain give-up/capacity driver.
RETRY_OVERHEAD_CEILING = 2.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@pytest.mark.benchmark
def test_bench_open_schedule_vs_scalar(benchmark):
    spec = open_point()

    scalar, scalar_seconds = _timed(
        lambda: run_open_scenario(spec.override({"batch": False}))
    )
    vectorized, vector_seconds = _timed(lambda: run_open_scenario(spec))
    benchmark.pedantic(
        lambda: run_open_scenario(spec), rounds=3, iterations=1, warmup_rounds=1
    )

    # Correctness first: same seed streams, same trichotomy draws, same
    # store - bitwise, not statistically.
    assert scalar.engine == ENGINE_OPEN_SCALAR
    assert vectorized.engine == ENGINE_OPEN_SCHEDULE
    assert vectorized.store == scalar.store, (
        "vectorized open run diverged from the scalar reference store"
    )

    speedup = scalar_seconds / vector_seconds
    print(
        f"\nopen decay/poisson, trials={TRIALS}: scalar={scalar_seconds:.3f}s "
        f"vectorized={vector_seconds:.3f}s speedup={speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"open-schedule engine only {speedup:.1f}x faster than scalar "
        f"({vector_seconds:.3f}s vs {scalar_seconds:.3f}s); "
        f"expected >= {SPEEDUP_FLOOR:.0f}x"
    )


@pytest.mark.benchmark
def test_bench_open_retry_lifecycle(benchmark):
    """The lifecycle gate: retry + admission policies stay cheap.

    Three asserts on the backoff+shed point: the vectorized driver with
    the full lifecycle active (1) stays bit-identical to the scalar
    oracle running the same policies, (2) remains >= 5x faster than that
    oracle, and (3) costs at most 2x the plain open driver - the same
    traffic point with the zero policies (give-up / hard capacity), i.e.
    exactly PR 7's fast path - so the orbit, admission, and expiry
    machinery never taxes runs that do not use it.
    """
    retry_spec = open_retry_point()
    plain_spec = retry_spec.override(
        {
            "name": "bench-open-decay-retry-baseline",
            "retry": "give-up",
            "admission": "capacity",
        }
    )

    scalar, scalar_seconds = _timed(
        lambda: run_open_scenario(retry_spec.override({"batch": False}))
    )
    vectorized, vector_seconds = _timed(lambda: run_open_scenario(retry_spec))
    _, plain_seconds = _timed(lambda: run_open_scenario(plain_spec))
    benchmark.pedantic(
        lambda: run_open_scenario(retry_spec),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )

    assert scalar.engine == ENGINE_OPEN_SCALAR
    assert vectorized.engine == ENGINE_OPEN_SCHEDULE
    assert vectorized.store == scalar.store, (
        "retry-enabled vectorized run diverged from the scalar reference"
    )
    assert vectorized.store.retried > 0, (
        "benchmark point produced no retries; the lifecycle is not hot"
    )

    speedup = scalar_seconds / vector_seconds
    overhead = vector_seconds / plain_seconds
    print(
        f"\nopen retry lifecycle, trials={TRIALS}: "
        f"scalar={scalar_seconds:.3f}s vectorized={vector_seconds:.3f}s "
        f"plain={plain_seconds:.3f}s speedup={speedup:.1f}x "
        f"overhead={overhead:.2f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"retry-enabled engine only {speedup:.1f}x faster than scalar; "
        f"expected >= {SPEEDUP_FLOOR:.0f}x"
    )
    assert overhead <= RETRY_OVERHEAD_CEILING, (
        f"request lifecycle costs {overhead:.2f}x over the plain open "
        f"driver; ceiling is {RETRY_OVERHEAD_CEILING:.1f}x"
    )
