"""Open-system engine benchmark: vectorized driver vs the scalar oracle.

The acceptance gate for the open-loop driver: on the fixed load point of
:mod:`benchmarks.opensys_workload` (decay serving Poisson arrivals below
service capacity), the vectorized open-schedule engine must run >= 5x
faster than the scalar per-trial reference loop - and, because both
consume identical per-trial seed streams, produce a **bit-identical**
latency store, not merely matching statistics.  Single-core, so the gate
never skips.
"""

from __future__ import annotations

import time

import pytest

from repro.opensys import ENGINE_OPEN_SCALAR, ENGINE_OPEN_SCHEDULE
from repro.scenarios import run_open_scenario

from .opensys_workload import TRIALS, open_point

SPEEDUP_FLOOR = 5.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@pytest.mark.benchmark
def test_bench_open_schedule_vs_scalar(benchmark):
    spec = open_point()

    scalar, scalar_seconds = _timed(
        lambda: run_open_scenario(spec.override({"batch": False}))
    )
    vectorized, vector_seconds = _timed(lambda: run_open_scenario(spec))
    benchmark.pedantic(
        lambda: run_open_scenario(spec), rounds=3, iterations=1, warmup_rounds=1
    )

    # Correctness first: same seed streams, same trichotomy draws, same
    # store - bitwise, not statistically.
    assert scalar.engine == ENGINE_OPEN_SCALAR
    assert vectorized.engine == ENGINE_OPEN_SCHEDULE
    assert vectorized.store == scalar.store, (
        "vectorized open run diverged from the scalar reference store"
    )

    speedup = scalar_seconds / vector_seconds
    print(
        f"\nopen decay/poisson, trials={TRIALS}: scalar={scalar_seconds:.3f}s "
        f"vectorized={vector_seconds:.3f}s speedup={speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"open-schedule engine only {speedup:.1f}x faster than scalar "
        f"({vector_seconds:.3f}s vs {scalar_seconds:.3f}s); "
        f"expected >= {SPEEDUP_FLOOR:.0f}x"
    )
