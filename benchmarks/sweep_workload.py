"""The shared sweep-executor benchmark workloads.

One definition consumed by both the opt-in benchmark gates
(:mod:`benchmarks.test_bench_sweep`,
:mod:`benchmarks.test_bench_sweep_fused`) and the snapshot tool
(``tools/bench_report.py``), so the executor gates and the
``sweep_executor`` / ``sweep_fused`` sections of ``BENCH_BATCH.json``
always measure the same grids:

* :func:`executor_sweep` - eight entropy-dial points at Table-1 scale,
  each heavy enough (200k trials by default) to dwarf the process
  pool's spawn cost (the multi-core axis);
* :func:`cache_sweep` - the same dial at 50k trials per point, the
  warm-cache gate workload (:mod:`benchmarks.test_bench_cache` and the
  ``sweep_cache`` report section): heavy enough that a cache hit beating
  re-simulation by >= 20x is a trivial bar, not a lucky one;
* :func:`fused_sweep` - a dense 32-point transmission-probability dial
  of long-horizon ``fixed-probability`` points: many small engine-bound
  points, the regime where the fused executor's stacked round loop wins
  on a single core (the axis the pool cannot touch there);
* :func:`fused_player_sweep` - a 16-point advice-corruption curve of
  worst-case deterministic scans: long-horizon player points stacked
  into one randomness-free array run;
* :func:`cd_grid_sweep` - the dense CD grid (Willard / decay /
  code-search under clean and shifted predictions), built from the same
  :data:`repro.scenarios.EXAMPLE_CD_SWEEP` definition the CLI prints via
  ``repro scenario example --cd-grid``, so the fused-CD benchmark gate
  and the docs exercise one workload.  Its history points stack through
  :func:`repro.channel.batch.run_history_stacked` (``fused-history``).
"""

from __future__ import annotations

import copy

from repro.scenarios import EXAMPLE_CD_SWEEP, ScenarioSpec, Sweep

N = 2**16
TRIALS_PER_POINT = 200_000
MAX_ROUNDS = 1024
SEED = 2021

#: The fused benchmark's dense single-core grid.
FUSED_POINTS = 32
FUSED_TRIALS_PER_POINT = 256
FUSED_PLAYER_POINTS = 16
FUSED_PLAYER_TRIALS = 48

#: The dense CD grid (4 protocols x 2 prediction qualities x 4
#: workloads; 24 history points + 8 schedule points).
CD_GRID_POINTS = 32
CD_GRID_TRIALS = EXAMPLE_CD_SWEEP["base"]["trials"]

#: The warm-cache gate reuses the executor dial at reduced weight: heavy
#: enough that re-simulating dwarfs key hashing + JSON loads by orders
#: of magnitude, light enough to keep the benchmark batch fast.
CACHE_TRIALS_PER_POINT = 50_000

#: Eight entropy-dial points (n = 2^16 has 16 condensed ranges).
RANGE_SETS: list[list[int]] = [
    [8],
    [4, 12],
    [2, 8, 14],
    [2, 6, 10, 14],
    [3, 7, 11, 15],
    [2, 5, 8, 11, 14],
    [2, 4, 6, 8, 10, 12],
    [2, 4, 6, 8, 10, 12, 14, 16],
]


def executor_sweep(trials: int = TRIALS_PER_POINT) -> Sweep:
    """The benchmark sweep: cycling sorted probing across the dial."""
    base = ScenarioSpec.from_dict(
        {
            "name": "bench-sweep",
            "protocol": {"id": "sorted-probing", "params": {"one_shot": False}},
            "prediction": "truth",
            "workload": {
                "kind": "distribution",
                "params": {"family": "range_uniform_subset", "ranges": [8]},
            },
            "channel": "nocd",
            "n": N,
            "trials": trials,
            "max_rounds": MAX_ROUNDS,
            "seed": SEED,
        }
    )
    return Sweep(base=base, grid={"workload.params.ranges": RANGE_SETS})


def cache_sweep(trials: int = CACHE_TRIALS_PER_POINT) -> Sweep:
    """The warm-cache gate grid: the executor dial at cache-gate weight.

    Same eight entropy-dial points as :func:`executor_sweep` - the
    content-addressed store is executor-agnostic, so the cache gate
    reuses the canonical sweep rather than inventing a new grid.
    """
    return executor_sweep(trials)


def fused_sweep(trials: int = FUSED_TRIALS_PER_POINT) -> Sweep:
    """The fused-executor gate grid: a dense transmission-probability dial.

    32 ``fixed-probability`` points sweeping ``k_hat`` (hence the round
    probability ``p = 1/k_hat``) against a fixed ``k = 4`` workload:
    solve horizons grow to hundreds of rounds at the high-``k_hat`` end,
    so the grid is engine-bound - per-round work dominates resolution -
    which is exactly the regime the stacked schedule engine exists for.
    """
    base = ScenarioSpec.from_dict(
        {
            "name": "bench-fused",
            "protocol": {"id": "fixed-probability", "params": {"k_hat": 64.0}},
            "workload": {"kind": "fixed", "params": {"k": 4}},
            "channel": "nocd",
            "n": 2**10,
            "trials": trials,
            "max_rounds": 2048,
            "seed": SEED,
        }
    )
    k_hats = [
        48.0 + (512.0 - 48.0) * index / (FUSED_POINTS - 1)
        for index in range(FUSED_POINTS)
    ]
    return Sweep(base=base, grid={"protocol.params.k_hat": k_hats})


def fused_player_sweep(trials: int = FUSED_PLAYER_TRIALS) -> Sweep:
    """The fused player grid: worst-case scans across an advice-noise dial.

    16 deterministic-scan points (b=2 at n=4096: a 1024-round worst-case
    pass) sweeping the bit-flip corruption probability - the robustness
    curve of Section 3.2, sampled densely.  The suffix adversary packs
    participants at the top of the advised subtree, so uncorrupted trials
    scan nearly the whole pass and corrupted ones exhaust it: every point
    is engine-bound for its full horizon.
    """
    base = ScenarioSpec.from_dict(
        {
            "name": "bench-fused-player",
            "protocol": {"id": "deterministic-scan", "params": {"advice_bits": 2}},
            "workload": {"kind": "fixed", "params": {"k": 2}},
            "channel": "nocd",
            "advice": {
                "function": "min-id-prefix",
                "bits": 2,
                "corruption": {"model": "bit-flip", "probability": 0.0},
            },
            "adversary": "suffix",
            "n": 2**12,
            "trials": trials,
            "max_rounds": 1025,
            "seed": SEED,
        }
    )
    probabilities = [
        round(index / (2 * (FUSED_PLAYER_POINTS - 1)), 6)
        for index in range(FUSED_PLAYER_POINTS)
    ]
    return Sweep(base=base, grid={"advice.corruption.probability": probabilities})


def cd_grid_sweep(trials: int = CD_GRID_TRIALS) -> Sweep:
    """The fused-CD gate grid: the CLI's ``--cd-grid`` sweep, verbatim.

    Willard at two vote repetitions and cycling code search run on the
    history engine (24 points sharing tries where the protocol spec
    repeats); the decay baseline rides along as an 8-point schedule
    group.  Points are small and engine-bound - the regime where the
    stacked history loop amortizes per-round work across the grid.
    """
    data = copy.deepcopy(EXAMPLE_CD_SWEEP)
    data["base"]["trials"] = trials
    return Sweep.from_dict(data)
