"""The shared sweep-executor benchmark workload.

One definition consumed by both the opt-in benchmark gate
(:mod:`benchmarks.test_bench_sweep`) and the snapshot tool
(``tools/bench_report.py``), so the >= 2x gate and the
``sweep_executor`` section of ``BENCH_BATCH.json`` always measure the
same grid: eight entropy-dial points at Table-1 scale, each heavy
enough (200k trials by default) to dwarf the process pool's spawn cost.
"""

from __future__ import annotations

from repro.scenarios import ScenarioSpec, Sweep

N = 2**16
TRIALS_PER_POINT = 200_000
MAX_ROUNDS = 1024
SEED = 2021

#: Eight entropy-dial points (n = 2^16 has 16 condensed ranges).
RANGE_SETS: list[list[int]] = [
    [8],
    [4, 12],
    [2, 8, 14],
    [2, 6, 10, 14],
    [3, 7, 11, 15],
    [2, 5, 8, 11, 14],
    [2, 4, 6, 8, 10, 12],
    [2, 4, 6, 8, 10, 12, 14, 16],
]


def executor_sweep(trials: int = TRIALS_PER_POINT) -> Sweep:
    """The benchmark sweep: cycling sorted probing across the dial."""
    base = ScenarioSpec.from_dict(
        {
            "name": "bench-sweep",
            "protocol": {"id": "sorted-probing", "params": {"one_shot": False}},
            "prediction": "truth",
            "workload": {
                "kind": "distribution",
                "params": {"family": "range_uniform_subset", "ranges": [8]},
            },
            "channel": "nocd",
            "n": N,
            "trials": trials,
            "max_rounds": MAX_ROUNDS,
            "seed": SEED,
        }
    )
    return Sweep(base=base, grid={"workload.params.ranges": RANGE_SETS})
