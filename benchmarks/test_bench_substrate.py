"""Micro-benchmarks of the substrate hot paths.

Performance guards, not paper artefacts: Monte Carlo throughput depends on
these staying cheap.  Each runs under pytest-benchmark's normal timing
loop (they are fast enough to iterate).
"""

import numpy as np

from repro.channel.channel import without_collision_detection
from repro.channel.simulator import run_uniform
from repro.infotheory.condense import CondensedDistribution
from repro.infotheory.distributions import SizeDistribution
from repro.infotheory.huffman import huffman_code_lengths
from repro.lowerbounds.rf_construction import rf_construction
from repro.protocols.decay import DecayProtocol

N = 2**16


def test_bench_run_uniform_decay(benchmark):
    """One decay execution at k=1000 on the binomial fast path."""
    protocol = DecayProtocol(N)
    channel = without_collision_detection()
    rng = np.random.default_rng(1)

    def run():
        return run_uniform(protocol, 1000, rng, channel=channel).rounds

    rounds = benchmark(run)
    assert rounds >= 1


def test_bench_sampling(benchmark):
    """Batch size sampling through the precomputed inverse CDF."""
    distribution = SizeDistribution.zipf(N, exponent=1.1)
    rng = np.random.default_rng(2)
    distribution.sampler()  # warm the cache outside the timed region

    def draw():
        return distribution.sample_many(rng, 1000)

    samples = benchmark(draw)
    assert len(samples) == 1000


def test_bench_condense(benchmark):
    """Condensing a full-support size pmf onto L(n)."""
    distribution = SizeDistribution.uniform(N)
    pmf = distribution.pmf.tolist()

    def condense():
        return CondensedDistribution.from_size_pmf(N, pmf)

    condensed = benchmark(condense)
    assert condensed.num_ranges == 16


def test_bench_huffman(benchmark):
    """Huffman length construction over a 256-symbol alphabet."""
    rng = np.random.default_rng(3)
    pmf = rng.dirichlet(np.ones(256)).tolist()

    lengths = benchmark(huffman_code_lengths, pmf)
    assert len(lengths) == 256


def test_bench_rf_construction(benchmark):
    """Algorithm 1 over a 4096-round schedule."""
    schedule = DecayProtocol(N).schedule.cycled(4096)

    sequence = benchmark(rf_construction, schedule, N)
    assert len(sequence) == 2 * 4096
