"""Batch vs scalar player-protocol estimation at Table-2 scale.

The acceptance benchmark for the vectorized player engine: the Table-2
deterministic no-CD scan at its suffix-adversary worst case (n = 2^16,
b = 8 -> 256-round executions) must run >= 5x faster on the batch
substrate than on the scalar per-player loop, with matching statistics
(exactly matching for the deterministic cells - the batch sessions run
the same state machine).  The CD descent and binary-exponential-backoff
cells are gated more loosely and reported for the trajectory.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis.montecarlo import estimate_player_rounds

from .player_workload import N, PlayerCell, player_cells

TRIALS = 2000
SEED = 2021


def _estimate(cell: PlayerCell, batch: bool):
    return estimate_player_rounds(
        cell.protocol,
        lambda rng: cell.adversary.checked_select(N, cell.k, rng),
        N,
        np.random.default_rng(SEED),
        channel=cell.channel,
        advice_function=cell.advice_function,
        trials=cell.trials,
        max_rounds=cell.max_rounds,
        batch=batch,
    )


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@pytest.mark.parametrize(
    "cell", player_cells(TRIALS), ids=lambda cell: cell.name
)
def test_bench_player_batch_vs_scalar(benchmark, cell: PlayerCell):
    scalar, scalar_seconds = _timed(lambda: _estimate(cell, False))
    batched, batch_seconds = _timed(lambda: _estimate(cell, True))
    benchmark.pedantic(
        lambda: _estimate(cell, True), rounds=3, iterations=1, warmup_rounds=1
    )

    speedup = scalar_seconds / batch_seconds
    print(
        f"\n{cell.name} (k={cell.k}, trials={cell.trials}): "
        f"scalar={scalar_seconds:.3f}s batch={batch_seconds:.3f}s "
        f"speedup={speedup:.1f}x"
    )
    assert batched.success.rate == pytest.approx(scalar.success.rate, abs=0.03)
    if cell.name != "backoff_random":
        # Deterministic cells: the two engines run the same state machine
        # on the same participant draws, so the statistics match exactly.
        assert batched.rounds == scalar.rounds
    elif scalar.any_successes and batched.any_successes:
        assert batched.rounds.mean == pytest.approx(
            scalar.rounds.mean, rel=0.1, abs=0.5
        )
    assert speedup >= cell.min_speedup, (
        f"player batch engine only {speedup:.1f}x faster than the scalar "
        f"per-player loop on {cell.name} "
        f"({batch_seconds:.3f}s vs {scalar_seconds:.3f}s)"
    )
