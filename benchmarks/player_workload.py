"""Shared Table-2-scale player-engine benchmark workload.

Used by both the opt-in gate (``benchmarks/test_bench_player.py``) and
the snapshot generator (``tools/bench_report.py``), so the recorded
``player_engine`` numbers and the enforced floors measure exactly the
same thing.

The cells mirror the Table 2 experiments on the full board (n = 2^16):
the deterministic no-CD candidate scan at its suffix-adversary worst
case (the Table-2 workload proper - hundreds of rounds per trial is
where the scalar per-player loop hurts most), the CD tree descent under
a random adversary at practical contention, and binary exponential
backoff (the practical MAC comparator driving the example scenarios).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channel.channel import (
    Channel,
    with_collision_detection,
    without_collision_detection,
)
from repro.channel.network import Adversary, RandomAdversary, SuffixAdversary
from repro.core.advice import AdviceFunction, MinIdPrefixAdvice
from repro.core.protocol import PlayerProtocol
from repro.protocols.advice_deterministic import (
    DeterministicScanProtocol,
    DeterministicTreeDescentProtocol,
)
from repro.protocols.backoff import BinaryExponentialBackoff

N = 2**16


@dataclass(frozen=True)
class PlayerCell:
    """One batch-vs-scalar player measurement: protocol + workload."""

    name: str
    protocol: PlayerProtocol
    adversary: Adversary
    k: int
    channel: Channel
    advice_function: AdviceFunction | None
    trials: int
    max_rounds: int
    #: Enforced speedup floor (the scan cell carries the acceptance >= 5x).
    min_speedup: float


def player_cells(trials: int) -> list[PlayerCell]:
    """The benchmark cells, with per-cell trial counts scaled from ``trials``."""
    scan = DeterministicScanProtocol(8)
    descent = DeterministicTreeDescentProtocol(0)
    return [
        PlayerCell(
            name="det_scan_suffix",
            protocol=scan,
            adversary=SuffixAdversary(),
            k=2,
            channel=without_collision_detection(),
            advice_function=MinIdPrefixAdvice(8),
            trials=trials,
            max_rounds=scan.worst_case_rounds(N) + 1,
            min_speedup=5.0,
        ),
        PlayerCell(
            name="tree_descent_random",
            protocol=descent,
            adversary=RandomAdversary(),
            k=64,
            channel=with_collision_detection(),
            advice_function=MinIdPrefixAdvice(0),
            trials=trials,
            max_rounds=descent.worst_case_rounds(N) + 1,
            min_speedup=2.0,
        ),
        PlayerCell(
            name="backoff_random",
            protocol=BinaryExponentialBackoff(),
            adversary=RandomAdversary(),
            k=64,
            channel=with_collision_detection(),
            advice_function=None,
            trials=max(1, trials // 5),
            max_rounds=4096,
            min_speedup=3.0,
        ),
    ]
