"""Table 1 regeneration benches: entropy-parameterised bounds.

Cells (see DESIGN.md experiment index):

* ``T1-NCD-UP``  - no-CD upper ``O(2^{2H})`` (Theorem 2.12 / Cor 2.15)
* ``T1-NCD-LOW`` - no-CD lower ``Omega(2^H / log log n)`` (Theorem 2.4)
* ``T1-CD-UP``   - CD upper ``O(H^2)`` (Theorem 2.16 / Cor 2.18)
* ``T1-CD-LOW``  - CD lower ``H/2 - O(llll n)`` (Theorem 2.8)
"""

from .conftest import run_and_check


def test_t1_nocd_upper(benchmark, bench_config):
    """Sorted probing succeeds w.p. >= 1/16 within its 2^(2H) budget."""
    run_and_check(benchmark, "T1-NCD-UP", bench_config)


def test_t1_nocd_lower(benchmark, bench_config):
    """RF-Construction range finding respects the 2^H entropy floor."""
    run_and_check(benchmark, "T1-NCD-LOW", bench_config)


def test_t1_cd_upper(benchmark, bench_config):
    """Code-class search succeeds within its (H+1)^2 budget."""
    run_and_check(benchmark, "T1-CD-UP", bench_config)


def test_t1_cd_lower(benchmark, bench_config):
    """Tree construction codes respect the Source Coding Theorem floor."""
    run_and_check(benchmark, "T1-CD-LOW", bench_config)
