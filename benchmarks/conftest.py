"""Shared configuration for the benchmark suite.

Each benchmark regenerates one paper artefact (a Table 1 / Table 2 cell or
a supporting experiment) at benchmark scale, prints the measurement table
it produced (so the teed benchmark log doubles as the raw data behind
EXPERIMENTS.md) and asserts the experiment's shape checks.

``pytest benchmarks/ --benchmark-only`` is the documented entry point.
"""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.registry import run_experiment

#: Benchmark-scale configuration: the full board (n = 2^16) with thinned
#: sweeps/trials so the whole suite completes in minutes.  EXPERIMENTS.md
#: records the full-scale (quick=False) numbers.
BENCH_CONFIG = ExperimentConfig(n=2**16, trials=800, seed=2021, quick=True)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG


def run_and_check(
    benchmark, experiment_id: str, config: ExperimentConfig
) -> ExperimentResult:
    """Benchmark one experiment run; print its table; assert its checks."""
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id, config),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(result.render())
    assert result.all_checks_pass(), (
        f"{experiment_id} failed shape checks: {result.failed_checks()}"
    )
    return result
