"""History-engine benchmark: the CD path, solo and fused.

The acceptance benchmark for the array-based history engine, in two
halves:

* **solo** - the Table-1 CD cell (Willard's search over an entropy
  workload on the full board) must run >= 8x faster on the history
  engine than on the scalar reference loop, with matching statistics.
  This is the cell the old per-group-session engine managed only ~3x on;
  the trie-memoized, trichotomy-band rebuild clears 8x with the first
  run cold and the remainder warm (steady-state for experiment loops,
  which estimate the same protocol spec many times).
* **fused** - the dense CD grid of :func:`benchmarks.sweep_workload.cd_grid_sweep`
  (Willard / decay / code-search under clean and shifted predictions)
  must run >= 3x faster through the ``fused`` executor than point-serial,
  with per-point statistics *identical* to the serial reference - the
  ``fused-history`` stacking the PR-4 executor could not reach.

Like the other fused gate this needs no extra cores, so it never skips.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis.montecarlo import (
    ENGINE_FUSED_HISTORY,
    estimate_uniform_rounds,
)
from repro.channel import with_collision_detection
from repro.experiments.table1_nocd import entropy_sweep_distributions
from repro.protocols.willard import WillardProtocol
from repro.scenarios import run_sweep

from .sweep_workload import CD_GRID_POINTS, cd_grid_sweep

N = 2**16
TRIALS = 6000
MAX_ROUNDS = 1024
SEED = 2021


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@pytest.mark.benchmark
def test_bench_history_solo_vs_scalar(benchmark):
    """Table 1 CD cell: Willard on the array-based history engine."""
    distribution = entropy_sweep_distributions(N, quick=True)[1]
    protocol = WillardProtocol(N)
    channel = with_collision_detection()

    def estimate(batch):
        return estimate_uniform_rounds(
            protocol,
            distribution,
            np.random.default_rng(SEED),
            channel=channel,
            trials=TRIALS,
            max_rounds=MAX_ROUNDS,
            batch=batch,
        )

    scalar, scalar_seconds = _timed(lambda: estimate(False))
    batched, batch_seconds = _timed(lambda: estimate(True))
    benchmark.pedantic(
        lambda: estimate(True), rounds=3, iterations=1, warmup_rounds=1
    )

    speedup = scalar_seconds / batch_seconds
    print(
        f"\nCD Willard, trials={TRIALS}: scalar={scalar_seconds:.3f}s "
        f"batch={batch_seconds:.3f}s speedup={speedup:.1f}x"
    )
    assert batched.success.rate == scalar.success.rate == 1.0
    assert abs(batched.rounds.mean - scalar.rounds.mean) <= (
        0.1 * scalar.rounds.mean
    )
    assert speedup >= 8.0, (
        f"history engine only {speedup:.1f}x faster than scalar "
        f"({batch_seconds:.3f}s vs {scalar_seconds:.3f}s)"
    )


@pytest.mark.benchmark
def test_bench_history_fused_vs_point_serial(benchmark):
    sweep = cd_grid_sweep()
    assert len(sweep.points()) == CD_GRID_POINTS >= 24

    # Warm both paths once: the gate measures steady-state throughput,
    # not first-call distribution construction.
    run_sweep(sweep, executor="fused")

    start = time.perf_counter()
    serial = run_sweep(sweep, executor="serial")
    serial_seconds = time.perf_counter() - start

    fused = benchmark.pedantic(
        lambda: run_sweep(sweep, executor="fused"),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    fused_seconds = fused.elapsed_seconds

    # Correctness first: identical statistics, point for point.
    for point_serial, point_fused in zip(serial.results, fused.results):
        assert point_fused.spec == point_serial.spec
        assert point_fused.rounds == point_serial.rounds
        assert point_fused.success == point_serial.success
    labels = [point.engine for point in fused.results]
    assert labels.count(ENGINE_FUSED_HISTORY) >= 24

    speedup = serial_seconds / fused_seconds
    print(
        f"\nfused CD grid: serial={serial_seconds:.3f}s "
        f"fused={fused_seconds:.3f}s speedup={speedup:.2f}x "
        f"({CD_GRID_POINTS} points, {labels.count(ENGINE_FUSED_HISTORY)} "
        f"fused-history)"
    )
    assert speedup >= 3.0, (
        f"fused executor only {speedup:.2f}x over point-serial batch on "
        f"the {CD_GRID_POINTS}-point CD grid; expected >= 3x"
    )
