"""The benchmark suite, as an importable package.

Being a package (rather than a loose directory of modules) lets the
benchmark modules use relative imports of their shared harness in
``conftest.py`` under pytest's default import mode, so collecting from
the repository root never errors.  Benchmarks are opt-in: plain
``pytest`` runs only ``tests/`` (see ``pytest.ini``); run them with
``pytest benchmarks/``.
"""
