"""Ablation benches for the design choices DESIGN.md calls out.

These are not paper artefacts; they quantify the library's own knobs:

* probe repetitions in the noisy binary search (Willard-style majority
  voting) - reliability vs rounds;
* ``support_only`` cycling for sorted probing - the expected-time cost of
  probing ranges the prediction ruled out;
* one-shot vs cycling code search;
* the fast binomial uniform path vs the per-player engine (same
  distribution of outcomes, very different cost).
"""

import numpy as np

from repro.analysis.montecarlo import estimate_uniform_rounds
from repro.channel.channel import (
    with_collision_detection,
    without_collision_detection,
)
from repro.channel.simulator import run_players, run_uniform
from repro.core.predictions import Prediction
from repro.core.uniform import ProbabilitySchedule, ScheduleProtocol
from repro.infotheory.distributions import SizeDistribution
from repro.protocols.code_search import CodeSearchProtocol
from repro.protocols.sorted_probing import SortedProbingProtocol
from repro.protocols.willard import WillardProtocol

N = 2**16
TRIALS = 600


class _UniformAsPlayers:
    """Per-player wrapper of a uniform schedule, for the engine ablation."""

    from repro.core.protocol import PlayerProtocol, PlayerSession

    class _Session(PlayerSession):
        def __init__(self, probability, rng):
            self._probability = probability
            self._rng = rng

        def decide(self):
            return bool(self._rng.random() < self._probability)

        def observe(self, observation, *, transmitted):
            del observation, transmitted

    class _Protocol(PlayerProtocol):
        name = "uniform-as-players"
        requires_collision_detection = False
        advice_bits = 0

        def __init__(self, probability):
            self._probability = probability

        def session(self, player_id, n, advice, rng=None):
            return _UniformAsPlayers._Session(self._probability, rng)


def test_willard_repetitions(benchmark):
    """Reliability/rounds trade-off of the majority-vote repetition knob."""

    def sweep():
        rng = np.random.default_rng(5)
        channel = with_collision_detection()
        rows = {}
        for repetitions in (1, 3, 5):
            protocol = WillardProtocol(N, repetitions=repetitions)
            estimate = estimate_uniform_rounds(
                protocol, 1000, rng, channel=channel,
                trials=TRIALS, max_rounds=500,
            )
            rows[repetitions] = estimate.rounds.mean
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    print(f"\nwillard mean rounds by repetitions: {rows}")
    # More repetitions cost more rounds per comparison but fail less; at
    # this scale the totals stay within a small factor.
    assert rows[1] <= rows[5] * 3


def test_sorted_probing_support_only(benchmark):
    """Expected-time cost of probing zero-probability ranges."""

    def sweep():
        rng = np.random.default_rng(6)
        channel = without_collision_detection()
        truth = SizeDistribution.range_uniform_subset(N, [8])
        full = estimate_uniform_rounds(
            SortedProbingProtocol(Prediction(truth), one_shot=False),
            truth, rng, channel=channel, trials=TRIALS, max_rounds=4000,
        ).rounds.mean
        restricted = estimate_uniform_rounds(
            SortedProbingProtocol(
                Prediction(truth), one_shot=False, support_only=True
            ),
            truth, rng, channel=channel, trials=TRIALS, max_rounds=4000,
        ).rounds.mean
        return full, restricted

    full, restricted = benchmark.pedantic(
        sweep, rounds=1, iterations=1, warmup_rounds=0
    )
    print(f"\nsorted-probing cycling: full={full:.2f} support-only={restricted:.2f}")
    assert restricted < full


def test_code_search_one_shot_vs_cycling(benchmark):
    """Cycling restarts recover the one-shot failure mass."""

    def sweep():
        rng = np.random.default_rng(7)
        channel = with_collision_detection()
        truth = SizeDistribution.range_uniform_subset(N, [2, 9, 14])
        one_shot = estimate_uniform_rounds(
            CodeSearchProtocol(Prediction(truth), one_shot=True),
            truth, rng, channel=channel, trials=TRIALS, max_rounds=400,
        )
        cycling = estimate_uniform_rounds(
            CodeSearchProtocol(Prediction(truth), one_shot=False),
            truth, rng, channel=channel, trials=TRIALS, max_rounds=4000,
        )
        return one_shot.success.rate, cycling.success.rate

    one_shot_rate, cycling_rate = benchmark.pedantic(
        sweep, rounds=1, iterations=1, warmup_rounds=0
    )
    print(
        f"\ncode-search success: one-shot={one_shot_rate:.3f} "
        f"cycling={cycling_rate:.3f}"
    )
    assert cycling_rate >= one_shot_rate
    assert cycling_rate >= 0.99


def test_uniform_fast_path_vs_player_engine(benchmark):
    """The binomial path is an exact, much cheaper channel simulation."""
    k, p = 200, 1.0 / 200.0

    def run_both():
        rng = np.random.default_rng(8)
        channel = without_collision_detection()
        uniform_protocol = ScheduleProtocol(
            ProbabilitySchedule([p]), cycle=True
        )
        uniform_rounds = [
            run_uniform(
                uniform_protocol, k, rng, channel=channel, max_rounds=500
            ).rounds
            for _ in range(300)
        ]
        player_protocol = _UniformAsPlayers._Protocol(p)
        player_rounds = [
            run_players(
                player_protocol,
                frozenset(range(k)),
                N,
                rng,
                channel=channel,
                max_rounds=500,
            ).rounds
            for _ in range(100)
        ]
        return float(np.mean(uniform_rounds)), float(np.mean(player_rounds))

    uniform_mean, player_mean = benchmark.pedantic(
        run_both, rounds=1, iterations=1, warmup_rounds=0
    )
    print(
        f"\nmean rounds: binomial path={uniform_mean:.2f} "
        f"player engine={player_mean:.2f}"
    )
    # Identical channel semantics => matching means (within Monte Carlo
    # noise; both ~ e rounds for kp = 1).
    assert abs(uniform_mean - player_mean) <= 0.25 * max(uniform_mean, player_mean)
