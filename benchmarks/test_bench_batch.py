"""Batch vs scalar Monte Carlo estimation at Table-1 scale.

The acceptance benchmark for the vectorized engine: a benchmark-scale
Table 1 no-CD estimate (sorted probing over an entropy workload on the
full board) must run >= 10x faster on the batch substrate than on the
scalar reference loop, with matching statistics.  The CD comparison is
reported for the trajectory but only gated loosely - the history-grouped
engine's advantage grows with the trial count.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.montecarlo import estimate_uniform_rounds
from repro.channel import with_collision_detection, without_collision_detection
from repro.experiments.table1_nocd import entropy_sweep_distributions
from repro.protocols.sorted_probing import SortedProbingProtocol
from repro.protocols.willard import WillardProtocol

N = 2**16
TRIALS = 6000
MAX_ROUNDS = 1024
SEED = 2021


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_bench_batch_vs_scalar_nocd(benchmark):
    """Table 1 no-CD cell: sorted probing, cycling, mid-entropy workload."""
    distribution = entropy_sweep_distributions(N, quick=True)[1]
    protocol = SortedProbingProtocol(distribution, one_shot=False)
    channel = without_collision_detection()

    def estimate(batch):
        return estimate_uniform_rounds(
            protocol,
            distribution,
            np.random.default_rng(SEED),
            channel=channel,
            trials=TRIALS,
            max_rounds=MAX_ROUNDS,
            batch=batch,
        )

    scalar, scalar_seconds = _timed(lambda: estimate(False))
    batched, batch_seconds = _timed(lambda: estimate(True))
    benchmark.pedantic(
        lambda: estimate(True), rounds=3, iterations=1, warmup_rounds=1
    )

    speedup = scalar_seconds / batch_seconds
    print(
        f"\nno-CD sorted probing, trials={TRIALS}: "
        f"scalar={scalar_seconds:.3f}s batch={batch_seconds:.3f}s "
        f"speedup={speedup:.1f}x"
    )
    assert batched.success.rate == scalar.success.rate == 1.0
    assert abs(batched.rounds.mean - scalar.rounds.mean) <= (
        0.1 * scalar.rounds.mean
    )
    assert speedup >= 10.0, (
        f"batch engine only {speedup:.1f}x faster than scalar "
        f"({batch_seconds:.3f}s vs {scalar_seconds:.3f}s)"
    )


def test_bench_batch_vs_scalar_cd(benchmark):
    """Table 1 CD flavour: Willard's search on the history-grouped engine."""
    distribution = entropy_sweep_distributions(N, quick=True)[1]
    protocol = WillardProtocol(N)
    channel = with_collision_detection()

    def estimate(batch):
        return estimate_uniform_rounds(
            protocol,
            distribution,
            np.random.default_rng(SEED),
            channel=channel,
            trials=TRIALS,
            max_rounds=MAX_ROUNDS,
            batch=batch,
        )

    scalar, scalar_seconds = _timed(lambda: estimate(False))
    batched, batch_seconds = _timed(lambda: estimate(True))
    benchmark.pedantic(
        lambda: estimate(True), rounds=3, iterations=1, warmup_rounds=1
    )

    speedup = scalar_seconds / batch_seconds
    print(
        f"\nCD willard, trials={TRIALS}: "
        f"scalar={scalar_seconds:.3f}s batch={batch_seconds:.3f}s "
        f"speedup={speedup:.1f}x"
    )
    assert batched.success.rate == scalar.success.rate == 1.0
    assert abs(batched.rounds.mean - scalar.rounds.mean) <= (
        0.1 * scalar.rounds.mean
    )
    assert speedup >= 2.0, (
        f"history-grouped engine slower than expected: {speedup:.1f}x"
    )
