"""Sweep-executor benchmark: process pool vs serial at Table-1 scale.

The acceptance benchmark for the sweep layer: on a multi-core machine an
8-point sweep of heavy scenario points must run >= 2x faster through the
process-pool executor than serially, with *identical* results (every
point is reproducible from its own spec, so executors only change wall
clock).  On a single-core machine the speedup is physically impossible
and the gate is skipped - the equality check still runs, and
``tools/bench_report.py`` records the honest numbers plus ``cpu_count``
in ``BENCH_BATCH.json``.  Both consumers share the workload definition
in :mod:`benchmarks.sweep_workload`.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.scenarios import run_sweep

from .sweep_workload import RANGE_SETS, executor_sweep


@pytest.mark.benchmark
def test_bench_sweep_process_pool_vs_serial(benchmark):
    sweep = executor_sweep()

    start = time.perf_counter()
    serial = run_sweep(sweep, executor="serial")
    serial_seconds = time.perf_counter() - start

    workers = min(len(RANGE_SETS), os.cpu_count() or 1)
    pooled = benchmark.pedantic(
        lambda: run_sweep(sweep, executor="process", max_workers=workers),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    process_seconds = pooled.elapsed_seconds

    # Correctness first: executors are interchangeable, bit for bit.
    assert serial.results == pooled.results

    speedup = serial_seconds / process_seconds
    print(
        f"\nsweep executors: serial={serial_seconds:.3f}s "
        f"process={process_seconds:.3f}s speedup={speedup:.2f}x "
        f"({len(RANGE_SETS)} points, {workers} workers, "
        f"{os.cpu_count()} cpu)"
    )
    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            "single-core machine: the >= 2x process-pool gate needs >= 2 "
            f"cores (measured {speedup:.2f}x)"
        )
    assert speedup >= 2.0, (
        f"process pool only {speedup:.2f}x over serial on "
        f"{os.cpu_count()} cores; expected >= 2x"
    )
