"""Benches for the extension experiments (learned predictions, robustness).

Both go beyond the paper's formal results, operationalising its Section 1
motivation (learned models improving over time) and Section 1.3 question
(faulty advice); see DESIGN.md and EXPERIMENTS.md for the framing.
"""

from .conftest import run_and_check


def test_learning_loop(benchmark, bench_config):
    """Online loop: divergence falls, rounds converge to the oracle."""
    run_and_check(benchmark, "LEARN", bench_config)


def test_advice_robustness(benchmark, bench_config):
    """Faulty advice breaks bare protocols; the fallback repairs them."""
    run_and_check(benchmark, "ADVICE-ROBUST", bench_config)
