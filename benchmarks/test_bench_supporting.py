"""Supporting-experiment benches: divergence cost, coding sandwiches,
the Pliam separation, the probability lemmas, baseline crossovers and the
selective-family combinatorics."""

from .conftest import run_and_check


def test_kl_nocd(benchmark, bench_config):
    """Prediction error charged through 2^(2H+2D) (Theorem 2.12)."""
    run_and_check(benchmark, "KL-NCD", bench_config)


def test_kl_cd(benchmark, bench_config):
    """Prediction error charged through (H+D+1)^2 (Theorem 2.16)."""
    run_and_check(benchmark, "KL-CD", bench_config)


def test_source_coding(benchmark, bench_config):
    """Theorem 2.2 / 2.3 sandwiches over the distribution gallery."""
    run_and_check(benchmark, "SRC-CODE", bench_config)


def test_pliam_gap(benchmark, bench_config):
    """Guesswork / 2^H diverges on the Pliam family (Sec 2.5 conjecture)."""
    run_and_check(benchmark, "PLIAM", bench_config)


def test_lemma_windows(benchmark, bench_config):
    """Lemmas 2.6 / 2.10 / 2.13 success-probability windows."""
    run_and_check(benchmark, "LEMMA-PROBS", bench_config)


def test_crossover(benchmark, bench_config):
    """Prediction protocols vs decay/Willard across the entropy sweep."""
    run_and_check(benchmark, "BASELINE-X", bench_config)


def test_ssf_bounds(benchmark, bench_config):
    """Strongly selective families and the non-interactive advice floor."""
    run_and_check(benchmark, "SSF", bench_config)
