"""Fault-injection overhead on the batch engines.

The adversarial channel models ride inside the vectorized round loop
(one extra perturbation, plus one pre-drawn uniform block for the
randomized models), so they must not forfeit the batch engines' speed:
the acceptance gate is that a noisy batch run stays within 2x of the
faithful batch run on the same workload, on both the schedule and the
history engine.  Deterministic jammers consume no randomness at all and
are gated tighter.  Statistics sanity-check the models at scale: jams
and noise delay, they do not kill.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.montecarlo import estimate_uniform_rounds
from repro.channel import (
    AdaptiveAdversary,
    NoisyChannel,
    ObliviousJammer,
    with_collision_detection,
    without_collision_detection,
)
from repro.experiments.table1_nocd import entropy_sweep_distributions
from repro.protocols.sorted_probing import SortedProbingProtocol
from repro.protocols.willard import WillardProtocol

N = 2**16
TRIALS = 6000
MAX_ROUNDS = 1024
SEED = 2021

NOISE = NoisyChannel(
    silence_to_collision=0.05, collision_to_silence=0.05, success_erasure=0.1
)
JAM = ObliviousJammer(budget=8)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _estimate(protocol, distribution, channel):
    return estimate_uniform_rounds(
        protocol,
        distribution,
        np.random.default_rng(SEED),
        channel=channel,
        trials=TRIALS,
        max_rounds=MAX_ROUNDS,
        batch=True,
    )


def _gate(benchmark, protocol_factory, base_channel, label):
    distribution = entropy_sweep_distributions(N, quick=True)[1]

    faithful, faithful_seconds = _timed(
        lambda: _estimate(protocol_factory(), distribution, base_channel)
    )
    noisy, noisy_seconds = _timed(
        lambda: _estimate(
            protocol_factory(), distribution, base_channel.with_model(NOISE)
        )
    )
    jammed, jammed_seconds = _timed(
        lambda: _estimate(
            protocol_factory(), distribution, base_channel.with_model(JAM)
        )
    )
    benchmark.pedantic(
        lambda: _estimate(
            protocol_factory(), distribution, base_channel.with_model(NOISE)
        ),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )

    noise_overhead = noisy_seconds / faithful_seconds
    jam_overhead = jammed_seconds / faithful_seconds
    print(
        f"\n{label}, trials={TRIALS}: faithful={faithful_seconds:.3f}s "
        f"noisy={noisy_seconds:.3f}s ({noise_overhead:.2f}x) "
        f"jammed={jammed_seconds:.3f}s ({jam_overhead:.2f}x)"
    )

    # Statistics: the adversary delays but does not kill at this scale,
    # and the jam floor shows up as a strictly larger round count.
    assert faithful.success.rate == 1.0
    assert noisy.success.rate >= 0.99, noisy.success.rate
    assert jammed.success.rate >= 0.99, jammed.success.rate
    assert jammed.rounds.mean > faithful.rounds.mean
    assert jammed.rounds.minimum >= JAM.budget + 1

    # The perf gates.  Absolute floors keep sub-10ms runs from flaking
    # the ratio on timer noise.
    assert noisy_seconds <= max(2.0 * faithful_seconds, 0.05), (
        f"{label}: noisy batch {noise_overhead:.2f}x over faithful "
        f"({noisy_seconds:.3f}s vs {faithful_seconds:.3f}s)"
    )
    # The jammed run plays ~budget extra rounds per trial (real extra
    # work, not injection overhead), so it shares the noisy gate.
    assert jammed_seconds <= max(2.0 * faithful_seconds, 0.05), (
        f"{label}: jammed batch {jam_overhead:.2f}x over faithful "
        f"({jammed_seconds:.3f}s vs {faithful_seconds:.3f}s)"
    )


def _adaptive_gate(benchmark, protocol_factory, base_channel, model, label):
    """Adaptive batch within 3x of faithful batch.

    The adaptive model's per-round work is one boolean mask per live
    trial; what it buys with that work is *extra rounds* (each jam
    prolongs the execution), so the gate is looser than the 2x
    injection-overhead gates above: it bounds the whole stretched run,
    not just the perturbation layer.
    """
    distribution = entropy_sweep_distributions(N, quick=True)[1]

    faithful, faithful_seconds = _timed(
        lambda: _estimate(protocol_factory(), distribution, base_channel)
    )
    adaptive, adaptive_seconds = _timed(
        lambda: _estimate(
            protocol_factory(), distribution, base_channel.with_model(model)
        )
    )
    benchmark.pedantic(
        lambda: _estimate(
            protocol_factory(), distribution, base_channel.with_model(model)
        ),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )

    overhead = adaptive_seconds / faithful_seconds
    print(
        f"\n{label}, trials={TRIALS}: faithful={faithful_seconds:.3f}s "
        f"adaptive[{model.strategy}]={adaptive_seconds:.3f}s "
        f"({overhead:.2f}x)"
    )

    # Statistics: full information delays, it does not kill, and the
    # greedy floor (the first `budget` successes of every trial die)
    # shows up as a hard minimum.
    assert faithful.success.rate == 1.0
    assert adaptive.success.rate >= 0.99, adaptive.success.rate
    assert adaptive.rounds.mean > faithful.rounds.mean
    if model.strategy == "greedy":
        assert adaptive.rounds.minimum >= model.budget + 1

    assert adaptive_seconds <= max(3.0 * faithful_seconds, 0.05), (
        f"{label}: adaptive batch {overhead:.2f}x over faithful "
        f"({adaptive_seconds:.3f}s vs {faithful_seconds:.3f}s)"
    )


def test_bench_adversary_schedule_engine(benchmark):
    """No-CD sorted probing: fault overhead on the schedule engine."""
    distribution = entropy_sweep_distributions(N, quick=True)[1]
    _gate(
        benchmark,
        lambda: SortedProbingProtocol(distribution, one_shot=False),
        without_collision_detection(),
        "no-CD sorted probing",
    )


def test_bench_adversary_history_engine(benchmark):
    """CD Willard: fault overhead on the history-trie engine."""
    _gate(
        benchmark,
        lambda: WillardProtocol(N),
        with_collision_detection(),
        "CD willard",
    )


def test_bench_adaptive_schedule_engine(benchmark):
    """No-CD sorted probing under greedy adaptive jamming: the stretched
    run (budget extra successes to erase) stays within 3x of faithful."""
    distribution = entropy_sweep_distributions(N, quick=True)[1]
    _adaptive_gate(
        benchmark,
        lambda: SortedProbingProtocol(distribution, one_shot=False),
        without_collision_detection(),
        AdaptiveAdversary(budget=4, strategy="greedy"),
        "no-CD sorted probing",
    )


def test_bench_adaptive_history_engine(benchmark):
    """CD Willard under the front scheduler: the representative strategy
    for the history engine (greedy's forced collisions grow the memoized
    trie combinatorially - real extra search, benched in the
    adversary_adaptive section, not gated)."""
    _adaptive_gate(
        benchmark,
        lambda: WillardProtocol(N),
        with_collision_detection(),
        AdaptiveAdversary(budget=8, strategy="scheduler", mode="front"),
        "CD willard",
    )
