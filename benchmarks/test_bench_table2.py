"""Table 2 regeneration benches: the four perfect-advice tight bounds."""

from .conftest import run_and_check


def test_t2_det_nocd(benchmark, bench_config):
    """Deterministic no-CD: worst case Theta(n / 2^b) (Theorem 3.4)."""
    run_and_check(benchmark, "T2-DET-NCD", bench_config)


def test_t2_det_cd(benchmark, bench_config):
    """Deterministic CD: worst case Theta(log n - b) (Theorem 3.5)."""
    run_and_check(benchmark, "T2-DET-CD", bench_config)


def test_t2_rand_nocd(benchmark, bench_config):
    """Randomized no-CD: E[rounds] = Theta(log n / 2^b) (Theorem 3.6)."""
    run_and_check(benchmark, "T2-RAND-NCD", bench_config)


def test_t2_rand_cd(benchmark, bench_config):
    """Randomized CD: E[rounds] = Theta(log log n - b) (Theorem 3.7)."""
    run_and_check(benchmark, "T2-RAND-CD", bench_config)
