"""Warm-cache benchmark gate: a cached sweep must beat re-simulation >= 20x.

The acceptance benchmark for the content-addressed result store: running
the cache-gate sweep against a fully warm cache must (a) serve every
point from the store without invoking any engine - proven by making the
engine entry point explode - (b) return results bit-identical to the
cold run, and (c) be at least 20x faster than the cold run that
populated the cache.  ``tools/bench_report.py`` records the same
workload's honest numbers in the ``sweep_cache`` section of
``BENCH_BATCH.json``.
"""

from __future__ import annotations

import time

import pytest

from repro.scenarios import run_sweep

from .sweep_workload import cache_sweep

MIN_SPEEDUP = 20.0


@pytest.mark.benchmark
def test_bench_warm_cache_vs_cold(benchmark, tmp_path, monkeypatch):
    sweep = cache_sweep()
    cache_dir = tmp_path / "cache"

    start = time.perf_counter()
    cold = run_sweep(sweep, executor="serial", cache=cache_dir)
    cold_seconds = time.perf_counter() - start
    assert cold.cache_hits == 0

    # The warm run must not touch an engine at all: a fresh store
    # instance (no in-memory LRU carryover) and an exploding
    # run_scenario prove every point came from disk.
    import repro.scenarios.sweep as sweep_module

    def explode(spec):
        raise AssertionError("engine invoked on a fully warm cache")

    monkeypatch.setattr(sweep_module, "run_scenario", explode)

    start = time.perf_counter()
    warm = benchmark.pedantic(
        lambda: run_sweep(sweep, executor="serial", cache=cache_dir),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    warm_seconds = time.perf_counter() - start

    assert warm.cache_hits == len(sweep.points())
    assert warm.results == cold.results

    speedup = cold_seconds / warm_seconds
    print(
        f"\nsweep cache: cold={cold_seconds:.3f}s warm={warm_seconds:.4f}s "
        f"speedup={speedup:.1f}x ({len(sweep.points())} points)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm cache only {speedup:.1f}x over re-simulation; "
        f"expected >= {MIN_SPEEDUP}x"
    )
