"""Fused-executor benchmark: stacked grids vs point-serial batch runs.

The acceptance benchmark for the fused sweep engine: a dense 32-point
single-core grid of engine-bound schedule points must run >= 3x faster
through the ``fused`` executor than through point-serial batch runs,
with per-point statistics *identical* to the serial reference (every
point consumes its own seed-derived stream in solo order, stacked or
not).  Unlike the process-pool gate next door, this one needs no extra
cores - fusing amortizes the per-round engine work across grid points,
the axis a single core can actually exploit - so it never skips.  The
player-grid measurement rides along informationally (asserted identical,
logged, not gated) and both workloads are shared with
``tools/bench_report.py`` via :mod:`benchmarks.sweep_workload`.
"""

from __future__ import annotations

import time

import pytest

from repro.scenarios import run_sweep

from .sweep_workload import FUSED_POINTS, fused_player_sweep, fused_sweep


def _assert_identical(serial, fused) -> None:
    for point_serial, point_fused in zip(serial.results, fused.results):
        assert point_fused.spec == point_serial.spec
        assert point_fused.rounds == point_serial.rounds
        assert point_fused.success == point_serial.success


@pytest.mark.benchmark
def test_bench_sweep_fused_vs_point_serial(benchmark):
    sweep = fused_sweep()
    assert len(sweep.points()) == FUSED_POINTS >= 16

    start = time.perf_counter()
    serial = run_sweep(sweep, executor="serial")
    serial_seconds = time.perf_counter() - start

    fused = benchmark.pedantic(
        lambda: run_sweep(sweep, executor="fused"),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    fused_seconds = fused.elapsed_seconds

    # Correctness first: identical statistics, point for point.
    _assert_identical(serial, fused)

    # The player grid rides along: identity asserted, speedup logged.
    player = fused_player_sweep()
    start = time.perf_counter()
    player_serial = run_sweep(player, executor="serial")
    player_serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    player_fused = run_sweep(player, executor="fused")
    player_fused_seconds = time.perf_counter() - start
    _assert_identical(player_serial, player_fused)

    speedup = serial_seconds / fused_seconds
    print(
        f"\nfused sweep: serial={serial_seconds:.3f}s "
        f"fused={fused_seconds:.3f}s speedup={speedup:.2f}x "
        f"({FUSED_POINTS} schedule points); player grid "
        f"serial={player_serial_seconds:.3f}s "
        f"fused={player_fused_seconds:.3f}s "
        f"speedup={player_serial_seconds / player_fused_seconds:.2f}x"
    )
    assert speedup >= 3.0, (
        f"fused executor only {speedup:.2f}x over point-serial batch on "
        f"the {FUSED_POINTS}-point grid; expected >= 3x"
    )
