"""The shared open-system benchmark workload.

One fixed load point consumed by both the opt-in benchmark gate
(:mod:`benchmarks.test_bench_opensys`) and the snapshot tool
(``tools/bench_report.py``), so the gate and the ``open_system`` section
of ``BENCH_BATCH.json`` always measure the same run: decay serving a
Poisson request stream at a stable offered load, on the vectorized
open-schedule engine versus the scalar per-trial reference loop.

The point is sized like the closed-engine workloads - enough trials and
rounds that per-round numpy dispatch amortizes and the scalar loop's
per-request Python overhead dominates - while staying below decay's
service capacity so the backlog (and hence the work per round) remains
representative of steady state rather than a saturated queue.
"""

from __future__ import annotations

from repro.scenarios import (
    AdmissionSpec,
    ArrivalSpec,
    ChannelSpec,
    OpenScenarioSpec,
    ProtocolSpec,
    RetrySpec,
)

N = 1024
TRIALS = 512
ROUNDS = 1024
WARMUP = 128
CAPACITY = 256
RATE = 0.25
SEED = 2021

#: The retry-enabled variant's knobs: the graceful-degradation operating
#: regime - a loaded queue where a tail of requests times out and
#: re-enters via jittered capped backoff (a finite budget keeps the
#: orbit bounded) under occupancy shedding, so every lifecycle code path
#: (orbit release, admission refusal, timeout retry, Weyl jitter) is
#: exercised while most traffic still completes.  A saturated retry
#: storm would be a different (and unfair) comparison: there the driver
#: legitimately admits ~2.5x more attempts per round than the plain
#: point, so the overhead gate would measure load, not lifecycle cost.
RETRY_RATE = 0.15
RETRY_TIMEOUT = 32
RETRY_CAPACITY = 64


def open_point(*, trials: int = TRIALS, rounds: int = ROUNDS) -> OpenScenarioSpec:
    """The fixed load point, optionally re-scaled for snapshot runs."""
    return OpenScenarioSpec(
        name="bench-open-decay-poisson",
        protocol=ProtocolSpec(id="decay"),
        arrivals=ArrivalSpec(family="poisson", params={"rate": RATE}),
        channel=ChannelSpec(collision_detection=False),
        n=N,
        trials=trials,
        rounds=rounds,
        warmup=min(WARMUP, rounds - 1),
        capacity=CAPACITY,
        seed=SEED,
    )


def open_retry_point(
    *, trials: int = TRIALS, rounds: int = ROUNDS
) -> OpenScenarioSpec:
    """The same engine under a full request lifecycle: backoff + shed."""
    return OpenScenarioSpec(
        name="bench-open-decay-retry",
        protocol=ProtocolSpec(id="decay"),
        arrivals=ArrivalSpec(family="poisson", params={"rate": RETRY_RATE}),
        channel=ChannelSpec(collision_detection=False),
        n=N,
        trials=trials,
        rounds=rounds,
        warmup=min(WARMUP, rounds - 1),
        capacity=RETRY_CAPACITY,
        timeout=RETRY_TIMEOUT,
        retry=RetrySpec(
            kind="backoff",
            params={"base": 2, "cap": 32, "jitter": 8, "budget": 4},
        ),
        admission=AdmissionSpec(kind="shed", params={"threshold": 0.5}),
        seed=SEED,
    )
