"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_arguments(self):
        args = build_parser().parse_args(
            ["run", "SRC-CODE", "--quick", "--trials", "50", "--n", "1024"]
        )
        assert args.experiments == ["SRC-CODE"]
        assert args.quick and args.trials == 50 and args.n == 1024

    def test_report_command(self):
        args = build_parser().parse_args(["report", "--seed", "9"])
        assert args.command == "report" and args.seed == 9

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_exits_zero(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "T1-NCD-UP" in output and "SSF" in output

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "BOGUS"]) == 2
        assert "known ids" in capsys.readouterr().err

    def test_run_quick_experiment(self, capsys):
        code = main(
            ["run", "SRC-CODE", "--quick", "--n", "1024", "--trials", "100"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "SRC-CODE" in output
        assert "[PASS]" in output

    def test_run_with_csv(self, capsys):
        code = main(
            [
                "run",
                "LEMMA-PROBS",
                "--quick",
                "--n",
                "1024",
                "--trials",
                "100",
                "--csv",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "," in output  # CSV block emitted
