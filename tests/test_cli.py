"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXAMPLE_SCENARIO, EXAMPLE_SWEEP, build_parser, main
from repro.experiments.base import ExperimentResult


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_arguments(self):
        args = build_parser().parse_args(
            ["run", "SRC-CODE", "--quick", "--trials", "50", "--n", "1024"]
        )
        assert args.experiments == ["SRC-CODE"]
        assert args.quick and args.trials == 50 and args.n == 1024

    def test_report_command(self):
        args = build_parser().parse_args(["report", "--seed", "9"])
        assert args.command == "report" and args.seed == 9

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_exits_zero(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "T1-NCD-UP" in output and "SSF" in output

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "BOGUS"]) == 2
        assert "known ids" in capsys.readouterr().err

    def test_run_quick_experiment(self, capsys):
        code = main(
            ["run", "SRC-CODE", "--quick", "--n", "1024", "--trials", "100"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "SRC-CODE" in output
        assert "[PASS]" in output

    def test_run_with_csv(self, capsys):
        code = main(
            [
                "run",
                "LEMMA-PROBS",
                "--quick",
                "--n",
                "1024",
                "--trials",
                "100",
                "--csv",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "," in output  # CSV block emitted

    def test_run_validates_all_ids_before_running_any(self, capsys):
        """A typo'd id must fail the whole request up front, not midway."""
        code = main(["run", "SRC-CODE", "BOGUS", "--quick"])
        captured = capsys.readouterr()
        assert code == 2
        assert "BOGUS" in captured.err and "known ids" in captured.err
        assert "== SRC-CODE" not in captured.out  # nothing ran


def _stub_result(experiment_id: str, passed: bool) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"stub {experiment_id}",
        reference="stub reference",
        headers=["x"],
        rows=[[1]],
        checks={"stub check": passed},
    )


class TestReport:
    """The report command, against a stubbed registry (fast and exact)."""

    @pytest.fixture
    def stub_registry(self, monkeypatch):
        registry = {
            "GOOD": ((lambda config: _stub_result("GOOD", True)), "passes"),
            "BAD": ((lambda config: _stub_result("BAD", False)), "fails"),
        }
        import repro.cli as cli

        monkeypatch.setattr(cli, "EXPERIMENTS", registry)
        monkeypatch.setattr(cli, "experiment_ids", lambda: list(registry))
        monkeypatch.setattr(
            cli, "run_experiment", lambda eid, config: registry[eid][0](config)
        )
        return registry

    def test_all_pass_exits_zero(self, stub_registry, capsys, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(cli, "experiment_ids", lambda: ["GOOD"])
        assert main(["report", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "[PASS] GOOD" in out
        assert "all experiments reproduce" in out

    def test_failure_exits_one_and_names_failures(self, stub_registry, capsys):
        assert main(["report", "--quick"]) == 1
        out = capsys.readouterr().out
        assert "[PASS] GOOD" in out and "[FAIL] BAD" in out
        assert "failed: stub check" in out
        assert "1 experiment(s) failed: BAD" in out

    def test_report_forwards_config(self, capsys, monkeypatch):
        import repro.cli as cli

        seen = {}

        def capture(eid, config):
            seen["config"] = config
            return _stub_result(eid, True)

        monkeypatch.setattr(cli, "experiment_ids", lambda: ["ONLY"])
        monkeypatch.setattr(cli, "run_experiment", capture)
        assert main(["report", "--quick", "--n", "512", "--seed", "3"]) == 0
        config = seen["config"]
        assert config.n == 512 and config.seed == 3 and config.quick


class TestScenarioCommands:
    def test_example_is_runnable_json(self, capsys):
        assert main(["scenario", "example"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == EXAMPLE_SCENARIO

    def test_run_example_spec(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec = dict(EXAMPLE_SCENARIO, trials=80, n=256, max_rounds=128)
        spec_path.write_text(json.dumps(spec))
        assert main(["scenario", "run", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "engine:" in out and "success:" in out

    def test_run_json_output_round_trips(self, tmp_path, capsys):
        from repro.scenarios import ScenarioResult

        spec_path = tmp_path / "spec.json"
        spec = dict(EXAMPLE_SCENARIO, trials=50, n=256, max_rounds=128)
        spec_path.write_text(json.dumps(spec))
        assert main(["scenario", "run", str(spec_path), "--json"]) == 0
        result = ScenarioResult.from_dict(json.loads(capsys.readouterr().out))
        assert result.success.trials == 50

    def test_sweep_example(self, tmp_path, capsys):
        sweep_path = tmp_path / "sweep.json"
        sweep = json.loads(json.dumps(EXAMPLE_SWEEP))
        sweep["base"].update(trials=40, n=256, max_rounds=128)
        sweep_path.write_text(json.dumps(sweep))
        assert main(["scenario", "sweep", str(sweep_path)]) == 0
        out = capsys.readouterr().out
        assert "4 point(s)" in out and "executor=serial" in out

    def test_sweep_process_executor_matches_serial(self, tmp_path, capsys):
        sweep_path = tmp_path / "sweep.json"
        sweep = json.loads(json.dumps(EXAMPLE_SWEEP))
        sweep["base"].update(trials=40, n=256, max_rounds=128)
        sweep["grid"] = {"workload.params.ranges": [[2], [2, 4]]}
        sweep_path.write_text(json.dumps(sweep))
        assert main(["scenario", "sweep", str(sweep_path), "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert (
            main(
                [
                    "scenario",
                    "sweep",
                    str(sweep_path),
                    "--executor",
                    "process",
                    "--workers",
                    "2",
                    "--json",
                ]
            )
            == 0
        )
        pooled = json.loads(capsys.readouterr().out)

        def strip(payload):
            payload = dict(payload, executor=None, elapsed_seconds=None)
            payload["results"] = [
                dict(row, elapsed_seconds=None) for row in payload["results"]
            ]
            return payload

        assert strip(serial) == strip(pooled)

    def test_sweep_fused_executor_matches_serial_statistics(
        self, tmp_path, capsys
    ):
        sweep_path = tmp_path / "sweep.json"
        sweep = json.loads(json.dumps(EXAMPLE_SWEEP))
        sweep["base"].update(trials=40, n=256, max_rounds=128)
        sweep_path.write_text(json.dumps(sweep))
        assert main(["scenario", "sweep", str(sweep_path), "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert (
            main(
                [
                    "scenario",
                    "sweep",
                    str(sweep_path),
                    "--executor",
                    "fused",
                    "--json",
                ]
            )
            == 0
        )
        fused = json.loads(capsys.readouterr().out)
        assert fused["executor"] == "fused"
        engines = {row["engine"] for row in fused["results"]}
        assert engines == {"fused-schedule"}

        def strip(payload):
            payload = dict(payload, executor=None, elapsed_seconds=None)
            payload["results"] = [
                dict(
                    row,
                    elapsed_seconds=None,
                    engine=None,
                    metadata=dict(row["metadata"], engine=None),
                )
                for row in payload["results"]
            ]
            return payload

        assert strip(serial) == strip(fused)

    def test_bad_spec_reports_scenario_error(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(dict(EXAMPLE_SCENARIO, protocol="warp-drive")))
        assert main(["scenario", "run", str(spec_path)]) == 2
        assert "scenario error" in capsys.readouterr().err

    def test_missing_spec_file(self, capsys):
        assert main(["scenario", "run", "/does/not/exist.json"]) == 2
        assert "cannot read spec" in capsys.readouterr().err

    def test_stdin_spec(self, monkeypatch, capsys):
        import io

        spec = dict(EXAMPLE_SCENARIO, trials=30, n=256, max_rounds=128)
        monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(spec)))
        assert main(["scenario", "run", "-"]) == 0
        assert "success:" in capsys.readouterr().out


class TestAdversaryCli:
    """The adversary example payload and channel-model error paths."""

    def test_adversary_example_is_runnable_json(self, capsys):
        from repro.scenarios import EXAMPLE_ADVERSARY_SWEEP, Sweep

        assert main(["scenario", "example", "--adversary"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == EXAMPLE_ADVERSARY_SWEEP
        assert payload["base"]["channel"]["model"]["name"] == "jam-oblivious"
        assert "channel.model.params.budget" in payload["grid"]
        # The payload must expand cleanly into points.
        sweep = Sweep.from_dict(payload)
        assert len(sweep.points()) > 1

    def test_example_kinds_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["scenario", "example", "--adversary", "--cd-grid"]
            )

    def test_adversary_sweep_runs_fused(self, capsys):
        """A thinned adversary grid executes end to end through the
        fused executor and stamps fused engine labels."""
        from repro.scenarios import EXAMPLE_ADVERSARY_SWEEP

        sweep = json.loads(json.dumps(EXAMPLE_ADVERSARY_SWEEP))
        sweep["base"].update(trials=30, n=256, max_rounds=256)
        sweep["grid"] = {
            "channel.model.params.budget": [0, 4],
            "workload.params.ranges": [[2], [2, 4]],
        }
        import io

        monkey_stdin = io.StringIO(json.dumps(sweep))
        import sys as _sys

        original = _sys.stdin
        _sys.stdin = monkey_stdin
        try:
            assert main(["scenario", "sweep", "-", "--executor", "fused"]) == 0
        finally:
            _sys.stdin = original
        out = capsys.readouterr().out
        assert "fused-" in out

    def test_malformed_model_fails_fast_with_exit_2(self, tmp_path, capsys):
        spec = dict(
            EXAMPLE_SCENARIO,
            trials=30,
            n=256,
            channel={
                "collision_detection": False,
                "model": {"name": "warp-field"},
            },
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        assert main(["scenario", "run", str(spec_path)]) == 2
        err = capsys.readouterr().err
        assert "scenario error" in err
        assert "unknown channel model" in err
        assert "jam-oblivious" in err  # the message lists the vocabulary

    def test_out_of_range_model_param_fails_fast(self, tmp_path, capsys):
        spec = dict(
            EXAMPLE_SCENARIO,
            channel={
                "collision_detection": False,
                "model": {
                    "name": "noise",
                    "params": {"success_erasure": 2.0},
                },
            },
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        assert main(["scenario", "run", str(spec_path)]) == 2
        err = capsys.readouterr().err
        assert "scenario error" in err and "[0, 1]" in err

    def test_malformed_model_in_sweep_fails_before_any_point(
        self, tmp_path, capsys
    ):
        sweep = {
            "base": dict(
                EXAMPLE_SCENARIO,
                channel={
                    "collision_detection": False,
                    "model": {"name": "noise", "params": {"loudness": 11}},
                },
            ),
            "grid": {"workload.params.ranges": [[2], [4]]},
        }
        sweep_path = tmp_path / "sweep.json"
        sweep_path.write_text(json.dumps(sweep))
        assert main(["scenario", "sweep", str(sweep_path)]) == 2
        err = capsys.readouterr().err
        assert "scenario error" in err and "unknown parameter" in err


class TestOpenCli:
    """The ``scenario open`` command family."""

    def _quick(self, payload):
        quick = json.loads(json.dumps(payload))
        quick.update(trials=4, rounds=96, warmup=16)
        return quick

    def test_open_example_is_runnable_json(self, capsys):
        from repro.scenarios import EXAMPLE_OPEN_SCENARIO, OpenScenarioSpec

        assert main(["scenario", "open", "example"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == EXAMPLE_OPEN_SCENARIO
        OpenScenarioSpec.from_dict(payload)  # loads cleanly

    def test_open_example_sweep_expands(self, capsys):
        from repro.scenarios import EXAMPLE_OPEN_SWEEP, OpenSweep

        assert main(["scenario", "open", "example", "--sweep"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == EXAMPLE_OPEN_SWEEP
        assert len(OpenSweep.from_dict(payload).points()) == 4

    def test_open_example_retry_grid_expands(self, capsys):
        from repro.scenarios import EXAMPLE_OPEN_RETRY_SWEEP, OpenSweep

        assert main(["scenario", "open", "example", "--retry"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == EXAMPLE_OPEN_RETRY_SWEEP
        points = OpenSweep.from_dict(payload).points()
        assert {p.retry.kind for p in points} == {
            "give-up", "immediate", "backoff",
        }

    def test_open_retry_sweep_reports_lifecycle_counters(
        self, tmp_path, capsys
    ):
        """The CI smoke path: retry sweep JSON carries the new counters."""
        from repro.scenarios import EXAMPLE_OPEN_RETRY_SWEEP

        sweep = json.loads(json.dumps(EXAMPLE_OPEN_RETRY_SWEEP))
        sweep["base"].update(trials=4, rounds=96, warmup=16)
        sweep["grid"] = {
            "retry.kind": ["immediate", "backoff"],
            "arrivals.params.rate": [0.5],
        }
        sweep_path = tmp_path / "retry.json"
        sweep_path.write_text(json.dumps(sweep))
        assert main(["scenario", "open", "sweep", str(sweep_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["results"]) == 2
        for row in report["results"]:
            assert row["engine"] == "open-schedule"
            assert row["summary"]["retried"] > 0
            assert "abandoned" in row["summary"]

    def test_open_run_renders_latency(self, tmp_path, capsys):
        from repro.scenarios import EXAMPLE_OPEN_SCENARIO

        spec_path = tmp_path / "open.json"
        spec_path.write_text(json.dumps(self._quick(EXAMPLE_OPEN_SCENARIO)))
        assert main(["scenario", "open", "run", str(spec_path)]) == 0
        output = capsys.readouterr().out
        assert "open-schedule" in output and "p99" in output

    def test_open_run_json_round_trips(self, tmp_path, capsys):
        from repro.scenarios import EXAMPLE_OPEN_SCENARIO, OpenScenarioResult

        spec_path = tmp_path / "open.json"
        spec_path.write_text(json.dumps(self._quick(EXAMPLE_OPEN_SCENARIO)))
        assert main(["scenario", "open", "run", str(spec_path), "--json"]) == 0
        result = OpenScenarioResult.from_json(capsys.readouterr().out)
        assert result.engine == "open-schedule"
        assert result.store.completed > 0

    def test_open_sweep_renders_the_load_curve(self, tmp_path, capsys):
        from repro.scenarios import EXAMPLE_OPEN_SWEEP

        sweep = json.loads(json.dumps(EXAMPLE_OPEN_SWEEP))
        sweep["base"].update(trials=4, rounds=96, warmup=16)
        sweep["grid"] = {"arrivals.params.rate": [0.05, 0.2]}
        sweep_path = tmp_path / "sweep.json"
        sweep_path.write_text(json.dumps(sweep))
        assert main(["scenario", "open", "sweep", str(sweep_path)]) == 0
        table = capsys.readouterr().out
        assert "open sweep: 2 point(s)" in table
        assert "open-schedule" in table and "p99" in table

    def test_open_bad_spec_exits_two(self, tmp_path, capsys):
        from repro.scenarios import EXAMPLE_OPEN_SCENARIO

        bad = dict(EXAMPLE_OPEN_SCENARIO, arrivals={"family": "fractal"})
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps(bad))
        assert main(["scenario", "open", "run", str(spec_path)]) == 2
        assert "scenario error" in capsys.readouterr().err

    def test_open_missing_spec_file(self, capsys):
        assert main(["scenario", "open", "run", "/does/not/exist.json"]) == 2
        assert "cannot read spec" in capsys.readouterr().err

    def test_open_stdin_spec(self, monkeypatch, capsys):
        import io

        from repro.scenarios import EXAMPLE_OPEN_SCENARIO

        payload = self._quick(EXAMPLE_OPEN_SCENARIO)
        monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(payload)))
        assert main(["scenario", "open", "run", "-"]) == 0
        assert "latency:" in capsys.readouterr().out
