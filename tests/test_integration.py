"""End-to-end integration tests across the library's layers.

Each test tells one complete story from the paper: build a workload,
derive a prediction, run protocols on the simulated channel, and compare
against the information-theoretic budgets.
"""

import numpy as np
import pytest

from repro import (
    CodeSearchProtocol,
    DecayProtocol,
    ExperimentConfig,
    MinIdPrefixAdvice,
    Prediction,
    SizeDistribution,
    SortedProbingProtocol,
    WillardProtocol,
    estimate_uniform_rounds,
    mix_with_uniform,
    run_players,
    run_uniform,
    with_collision_detection,
    without_collision_detection,
)
from repro.protocols import (
    DeterministicScanProtocol,
    DeterministicTreeDescentProtocol,
    TruncatedDecayProtocol,
    truncated_willard_for_count,
)


class TestPredictionPipeline:
    """Section 2's story: learn a distribution, exploit it, pay for error."""

    def test_good_prediction_beats_decay(self):
        rng = np.random.default_rng(21)
        n = 2**12
        channel = without_collision_detection()
        truth = SizeDistribution.bimodal(n, low_size=8, high_size=1500)
        prediction = Prediction(truth)

        informed = estimate_uniform_rounds(
            SortedProbingProtocol(prediction, one_shot=False, support_only=True),
            truth, rng, channel=channel, trials=1500, max_rounds=4000,
        )
        baseline = estimate_uniform_rounds(
            DecayProtocol(n), truth, rng, channel=channel,
            trials=1500, max_rounds=4000,
        )
        assert informed.rounds.mean < baseline.rounds.mean

    def test_budget_report_predicts_measured_success(self):
        rng = np.random.default_rng(22)
        n = 2**12
        channel = without_collision_detection()
        truth = SizeDistribution.range_uniform_subset(n, [2, 5, 8, 11])
        predicted = mix_with_uniform(truth, 0.4)
        prediction = Prediction(predicted)
        budget = prediction.budget_against(truth)

        protocol = SortedProbingProtocol(prediction, one_shot=True)
        successes = sum(
            run_uniform(
                protocol,
                truth.sample(rng),
                rng,
                channel=channel,
                max_rounds=max(1, int(np.ceil(budget.nocd_budget_rounds))),
            ).solved
            for _ in range(1200)
        )
        assert successes / 1200 >= 1.0 / 16.0

    def test_cd_pipeline_with_mispredicted_distribution(self):
        rng = np.random.default_rng(23)
        n = 2**12
        channel = with_collision_detection()
        truth = SizeDistribution.range_uniform_subset(n, [3, 9])
        predicted = mix_with_uniform(truth, 0.3)
        protocol = CodeSearchProtocol(Prediction(predicted), one_shot=False)
        for _ in range(25):
            k = truth.sample(rng)
            assert run_uniform(protocol, k, rng, channel=channel).solved


class TestAdvicePipeline:
    """Section 3's story: b bits of perfect advice buy bounded speed-up."""

    def test_deterministic_advice_speedup_chain(self):
        rng = np.random.default_rng(31)
        n = 2**10
        channel = without_collision_detection()
        participants = frozenset({n - 3, n - 2, n - 1})
        rounds_by_budget = []
        for b in (0, 2, 4, 6):
            protocol = DeterministicScanProtocol(b)
            result = run_players(
                protocol, participants, n, rng,
                channel=channel,
                advice_function=MinIdPrefixAdvice(b),
                max_rounds=protocol.worst_case_rounds(n),
            )
            assert result.solved
            rounds_by_budget.append(result.rounds)
        assert rounds_by_budget == sorted(rounds_by_budget, reverse=True)

    def test_cd_advice_speedup_chain(self):
        rng = np.random.default_rng(32)
        n = 2**10
        channel = with_collision_detection()
        participants = frozenset({n - 2, n - 1})
        rounds_by_budget = []
        for b in (0, 3, 6, 9):
            protocol = DeterministicTreeDescentProtocol(b)
            result = run_players(
                protocol, participants, n, rng,
                channel=channel,
                advice_function=MinIdPrefixAdvice(b),
                max_rounds=protocol.worst_case_rounds(n),
            )
            assert result.solved
            rounds_by_budget.append(result.rounds)
        assert rounds_by_budget == sorted(rounds_by_budget, reverse=True)

    def test_randomized_advice_improves_expectations(self):
        rng = np.random.default_rng(33)
        n, k = 2**12, 900
        nocd = without_collision_detection()
        cd = with_collision_detection()
        decay_means, willard_means = [], []
        for b in (0, 2):
            decay_means.append(
                estimate_uniform_rounds(
                    TruncatedDecayProtocol.for_count(n, b, k), k, rng,
                    channel=nocd, trials=1200, max_rounds=2000,
                ).rounds.mean
            )
            willard_means.append(
                estimate_uniform_rounds(
                    truncated_willard_for_count(n, b, k), k, rng,
                    channel=cd, trials=1200, max_rounds=2000,
                ).rounds.mean
            )
        assert decay_means[1] < decay_means[0]
        assert willard_means[1] <= willard_means[0] + 0.5


class TestWorstCaseBaselinesMatchTheory:
    def test_decay_within_constant_of_log_n(self):
        rng = np.random.default_rng(41)
        n = 2**10
        channel = without_collision_detection()
        worst = 0.0
        for k in (2, 30, 1000):
            estimate = estimate_uniform_rounds(
                DecayProtocol(n), k, rng, channel=channel,
                trials=800, max_rounds=2000,
            )
            worst = max(worst, estimate.rounds.mean)
        assert worst <= 4 * np.log2(n)

    def test_willard_within_constant_of_loglog_n(self):
        rng = np.random.default_rng(42)
        n = 2**16
        channel = with_collision_detection()
        worst = 0.0
        for k in (2, 300, 60_000):
            estimate = estimate_uniform_rounds(
                WillardProtocol(n), k, rng, channel=channel,
                trials=800, max_rounds=2000,
            )
            worst = max(worst, estimate.rounds.mean)
        # 3 repetitions x binary search of depth ~4 plus restarts.
        assert worst <= 10 * np.log2(np.log2(n))


class TestConfigPlumbing:
    def test_experiment_config_defaults(self):
        config = ExperimentConfig()
        assert config.n == 2**16
        assert not config.quick

    def test_library_version_exposed(self):
        import repro

        assert repro.__version__ == "1.0.0"
