"""Tests for the streaming arrival processes and their registry."""

import numpy as np
import pytest

from repro.channel.arrivals import MIN_COUNT, MarkovBurstArrivals, TraceArrivals
from repro.opensys import (
    ARRIVAL_FAMILIES,
    ClampedArrivalSizeSource,
    PoissonArrivals,
    ThinnedArrivals,
    ZipfHotspotArrivals,
    arrival_process_from_dict,
)


class TestPoisson:
    def test_mean_matches_rate(self):
        process = PoissonArrivals(0.5)
        draws = process.sample_rounds(np.random.default_rng(0), 50_000)
        assert draws.min() >= 0
        assert draws.mean() == pytest.approx(0.5, rel=0.05)
        assert process.offered_load == 0.5

    def test_rejects_bad_rate(self):
        for rate in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                PoissonArrivals(rate)


class TestZipfHotspot:
    def test_offered_load_matches_empirical_mean(self):
        process = ZipfHotspotArrivals(0.3, alpha=1.2, max_batch=16)
        draws = process.sample_rounds(np.random.default_rng(1), 100_000)
        assert draws.mean() == pytest.approx(process.offered_load, rel=0.05)

    def test_large_alpha_degenerates_to_singletons(self):
        process = ZipfHotspotArrivals(0.2, alpha=50.0, max_batch=8)
        assert process.offered_load == pytest.approx(0.2, rel=1e-6)

    def test_batches_exceed_one_when_tail_is_heavy(self):
        process = ZipfHotspotArrivals(0.2, alpha=0.5, max_batch=32)
        draws = process.sample_rounds(np.random.default_rng(2), 20_000)
        assert (draws > 1).any()
        assert process.offered_load > 0.2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ZipfHotspotArrivals(0.1, alpha=-1.0)
        with pytest.raises(ValueError):
            ZipfHotspotArrivals(0.1, max_batch=0)


class TestThinned:
    def test_thinning_scales_the_trace(self):
        trace = TraceArrivals([10, 20, 30])
        process = ThinnedArrivals(trace, thin=0.5)
        assert process.offered_load == pytest.approx(10.0)
        draws = process.sample_rounds(np.random.default_rng(3), 3)
        assert (draws <= np.array([10, 20, 30])).all()

    def test_thin_one_preserves_counts(self):
        trace = TraceArrivals([4, 7])
        process = ThinnedArrivals(trace, thin=1.0)
        assert (
            process.sample_rounds(np.random.default_rng(0), 2) == [4, 7]
        ).all()

    def test_reset_rewinds_the_wrapped_stream(self):
        process = ThinnedArrivals(TraceArrivals([5, 6, 7]), thin=1.0)
        rng = np.random.default_rng(0)
        first = process.sample_rounds(rng, 2)
        process.reset()
        again = process.sample_rounds(rng, 2)
        assert (first == [5, 6]).all()
        assert (again == [5, 6]).all()

    def test_clone_gets_independent_position(self):
        process = ThinnedArrivals(TraceArrivals([1, 2, 3]), thin=1.0)
        rng = np.random.default_rng(0)
        process.sample_rounds(rng, 2)  # advance the original
        clone = process.clone()
        assert (clone.sample_rounds(rng, 3) == [1, 2, 3]).all()

    def test_markov_stationary_offered_load(self):
        burst = MarkovBurstArrivals(
            100,
            calm_rate=0.05,
            burst_rate=0.4,
            burst_arrival=0.1,
            burst_departure=0.3,
        )
        process = ThinnedArrivals(burst, thin=0.1)
        # Stationary burst share 0.1/0.4 = 0.25 -> rate mix 0.1375/device.
        assert process.offered_load == pytest.approx(
            100 * (0.25 * 0.4 + 0.75 * 0.05) * 0.1
        )

    def test_rejects_bad_thin_and_wrapped(self):
        with pytest.raises(ValueError):
            ThinnedArrivals(TraceArrivals([1]), thin=0.0)
        with pytest.raises(TypeError):
            ThinnedArrivals(object(), thin=0.5)


class TestClampedSizeSource:
    def test_clamps_into_contender_range(self):
        source = ClampedArrivalSizeSource(PoissonArrivals(0.01), n=8)
        draws = source.sample_many(np.random.default_rng(0), 1000)
        assert draws.min() >= MIN_COUNT and draws.max() <= 8
        assert MIN_COUNT <= source.sample(np.random.default_rng(1)) <= 8

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            ClampedArrivalSizeSource(PoissonArrivals(1.0), n=1)


class TestRegistry:
    def test_families_build_and_sample(self):
        specs = {
            "poisson": {"rate": 0.2},
            "zipf-hotspot": {"rate": 0.1, "alpha": 1.0, "max_batch": 4},
            "bursty": {"devices": 50, "thin": 0.2},
            "trace": {"counts": [3, 1, 4], "thin": 1.0},
        }
        assert set(specs) == set(ARRIVAL_FAMILIES)
        for family, params in specs.items():
            process = arrival_process_from_dict({"family": family, **params})
            draws = process.sample_rounds(np.random.default_rng(0), 16)
            assert draws.shape == (16,) and draws.min() >= 0

    def test_unknown_family_and_parameters_fail_fast(self):
        with pytest.raises(ValueError, match="unknown arrival family"):
            arrival_process_from_dict({"family": "fractal"})
        with pytest.raises(ValueError, match="requires parameter"):
            arrival_process_from_dict({"family": "poisson"})
        with pytest.raises(ValueError, match="unknown parameter"):
            arrival_process_from_dict({"family": "poisson", "rate": 1, "x": 2})
