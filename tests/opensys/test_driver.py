"""Tests for the open-loop driver: routing, bit-identity, and edge cases.

The load-bearing property is **bit-identity**: the vectorized engines and
the scalar per-trial oracle consume the same per-trial seed streams and
must produce byte-for-byte equal latency stores - under every batchable
channel model, not just the faithful channel.
"""

import numpy as np
import pytest

from repro.channel import (
    CrashModel,
    NoisyChannel,
    ObliviousJammer,
    ReactiveJammer,
    with_collision_detection,
    without_collision_detection,
)
from repro.opensys import (
    ENGINE_OPEN_HISTORY,
    ENGINE_OPEN_SCALAR,
    ENGINE_OPEN_SCHEDULE,
    ArrivalProcess,
    PoissonArrivals,
    ZipfHotspotArrivals,
    run_open,
    select_open_engine,
)
from repro.core.protocol import ProtocolError
from repro.protocols.decay import DecayProtocol
from repro.protocols.fixed_probability import FixedProbabilityProtocol
from repro.protocols.willard import WillardProtocol

N = 128


class SilentArrivals(ArrivalProcess):
    """A degenerate stream that never injects anything."""

    name = "silent"

    def sample_rounds(self, rng, rounds):
        return np.zeros(rounds, dtype=np.int64)

    @property
    def offered_load(self):
        return 0.0


def run_pair(protocol, channel, *, arrivals=None, **kwargs):
    """(vectorized, scalar) results for one workload, same seed streams."""
    arrivals = arrivals or PoissonArrivals(0.15)
    common = dict(channel=channel, trials=12, rounds=256, warmup=32, seed=7)
    common.update(kwargs)
    vectorized = run_open(protocol, arrivals, **common)
    scalar = run_open(protocol, arrivals, batch=False, **common)
    return vectorized, scalar


class TestEngineSelection:
    def test_schedule_protocol_routes_to_open_schedule(self):
        assert (
            select_open_engine(DecayProtocol(N)) == ENGINE_OPEN_SCHEDULE
        )

    def test_history_protocol_routes_to_open_history(self):
        assert select_open_engine(WillardProtocol(N)) == ENGINE_OPEN_HISTORY

    def test_batch_false_forces_the_scalar_oracle(self):
        assert (
            select_open_engine(DecayProtocol(N), False) == ENGINE_OPEN_SCALAR
        )

    def test_non_batchable_crash_model_is_rejected_everywhere(self):
        rejoining = CrashModel(0.1, rejoin_after=3)
        for batch in (None, True, False):
            with pytest.raises(ValueError, match="rejoin"):
                select_open_engine(DecayProtocol(N), batch, model=rejoining)


class TestBitIdentity:
    @pytest.mark.parametrize(
        "name,protocol,channel",
        [
            ("decay-nocd", DecayProtocol(N), without_collision_detection()),
            ("willard-cd", WillardProtocol(N), with_collision_detection()),
            (
                "fixedp-nocd",
                FixedProbabilityProtocol(12),
                without_collision_detection(),
            ),
            (
                "decay-noise",
                DecayProtocol(N),
                without_collision_detection(
                    NoisyChannel(
                        silence_to_collision=0.08,
                        collision_to_silence=0.05,
                        success_erasure=0.1,
                    )
                ),
            ),
            (
                "willard-jam",
                WillardProtocol(N),
                with_collision_detection(ObliviousJammer(budget=40, period=3)),
            ),
            (
                "willard-reactive",
                WillardProtocol(N),
                with_collision_detection(
                    ReactiveJammer(budget=30, quiet_streak=2)
                ),
            ),
            (
                "decay-crash",
                DecayProtocol(N),
                without_collision_detection(
                    CrashModel(0.05, rejoin_after=0)
                ),
            ),
        ],
    )
    def test_vectorized_matches_scalar_store(self, name, protocol, channel):
        vectorized, scalar = run_pair(protocol, channel)
        assert scalar.engine == ENGINE_OPEN_SCALAR
        assert vectorized.engine != ENGINE_OPEN_SCALAR
        assert vectorized.store == scalar.store, name

    def test_identity_holds_with_timeout_and_bursty_arrivals(self):
        vectorized, scalar = run_pair(
            DecayProtocol(N),
            without_collision_detection(),
            arrivals=ZipfHotspotArrivals(0.12, alpha=1.0, max_batch=6),
            timeout=40,
            capacity=32,
        )
        assert vectorized.store == scalar.store
        assert vectorized.store.timed_out == scalar.store.timed_out


class TestDeterminismAndSharding:
    def test_same_seed_reproduces_the_store(self):
        first, _ = run_pair(DecayProtocol(N), without_collision_detection())
        second, _ = run_pair(DecayProtocol(N), without_collision_detection())
        assert first.store == second.store

    def test_shards_merge_to_the_whole_run(self):
        protocol, channel = DecayProtocol(N), without_collision_detection()
        arrivals = PoissonArrivals(0.2)
        common = dict(channel=channel, rounds=200, warmup=20, seed=11)
        whole = run_open(protocol, arrivals, trials=13, **common)
        left = run_open(protocol, arrivals, trials=8, **common)
        right = run_open(
            protocol, arrivals, trials=5, trial_offset=8, **common
        )
        assert left.store.merge(right.store) == whole.store

    def test_trial_offset_changes_the_streams(self):
        protocol, channel = DecayProtocol(N), without_collision_detection()
        arrivals = PoissonArrivals(0.2)
        common = dict(channel=channel, trials=4, rounds=128, seed=11)
        base = run_open(protocol, arrivals, **common)
        offset = run_open(protocol, arrivals, trial_offset=4, **common)
        assert base.store != offset.store


class TestAccounting:
    def test_requests_are_conserved_without_warmup(self):
        result = run_open(
            DecayProtocol(N),
            PoissonArrivals(0.3),
            channel=without_collision_detection(),
            trials=8,
            rounds=300,
            warmup=0,
            capacity=16,
            timeout=60,
            seed=3,
        )
        store = result.store
        assert store.arrivals > 0
        assert store.arrivals == (
            store.completed + store.dropped + store.timed_out + store.in_flight
        )

    def test_capacity_overflow_drops(self):
        result = run_open(
            DecayProtocol(N),
            PoissonArrivals(2.0),  # far beyond service capacity
            channel=without_collision_detection(),
            trials=4,
            rounds=200,
            capacity=8,
            seed=0,
        )
        assert result.store.dropped > 0

    def test_timeout_bounds_the_measured_sojourns(self):
        result = run_open(
            DecayProtocol(N),
            PoissonArrivals(0.6),
            channel=without_collision_detection(),
            trials=8,
            rounds=300,
            timeout=25,
            seed=5,
        )
        summary = result.store.summary()
        assert result.store.timed_out > 0
        assert summary.maximum <= 25

    def test_silent_stream_measures_nothing(self):
        result = run_open(
            DecayProtocol(N),
            SilentArrivals(),
            channel=without_collision_detection(),
            trials=4,
            rounds=64,
            seed=0,
        )
        store = result.store
        assert store.arrivals == 0 and store.completed == 0
        assert store.round_slots == 4 * 64
        assert "n/a" in store.summary().render()

    def test_warmup_excludes_early_completions(self):
        kwargs = dict(
            channel=without_collision_detection(),
            trials=8,
            rounds=256,
            seed=9,
        )
        cold = run_open(DecayProtocol(N), PoissonArrivals(0.2), **kwargs)
        warm = run_open(
            DecayProtocol(N), PoissonArrivals(0.2), warmup=128, **kwargs
        )
        assert warm.store.completed < cold.store.completed
        assert warm.store.round_slots == 8 * 128


class TestValidation:
    def test_cd_protocol_needs_cd_channel(self):
        with pytest.raises(ProtocolError):
            run_open(
                WillardProtocol(N),
                PoissonArrivals(0.1),
                channel=without_collision_detection(),
                trials=2,
                rounds=16,
            )

    def test_parameter_bounds(self):
        good = dict(
            channel=without_collision_detection(), trials=2, rounds=16
        )
        for bad in (
            {"trials": 0},
            {"rounds": 0},
            {"warmup": 16},
            {"warmup": -1},
            {"capacity": 0},
            {"timeout": 0},
            {"trial_offset": -1},
        ):
            with pytest.raises(ValueError):
                run_open(
                    DecayProtocol(N),
                    PoissonArrivals(0.1),
                    **{**good, **bad},
                )
