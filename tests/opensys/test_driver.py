"""Tests for the open-loop driver: routing, bit-identity, and edge cases.

The load-bearing property is **bit-identity**: the vectorized engines and
the scalar per-trial oracle consume the same per-trial seed streams and
must produce byte-for-byte equal latency stores - under every batchable
channel model, not just the faithful channel.
"""

import numpy as np
import pytest

from repro.channel import (
    CrashModel,
    NoisyChannel,
    ObliviousJammer,
    ReactiveJammer,
    with_collision_detection,
    without_collision_detection,
)
from repro.opensys import (
    ENGINE_OPEN_HISTORY,
    ENGINE_OPEN_SCALAR,
    ENGINE_OPEN_SCHEDULE,
    ArrivalProcess,
    ExponentialBackoffPolicy,
    GiveUpPolicy,
    HardCapacityPolicy,
    ImmediateRetryPolicy,
    OccupancySheddingPolicy,
    PoissonArrivals,
    TokenBucketPolicy,
    ZipfHotspotArrivals,
    run_open,
    select_open_engine,
)
from repro.core.protocol import ProtocolError
from repro.protocols.decay import DecayProtocol
from repro.protocols.fixed_probability import FixedProbabilityProtocol
from repro.protocols.willard import WillardProtocol

N = 128


class SilentArrivals(ArrivalProcess):
    """A degenerate stream that never injects anything."""

    name = "silent"

    def sample_rounds(self, rng, rounds):
        return np.zeros(rounds, dtype=np.int64)

    @property
    def offered_load(self):
        return 0.0


def run_pair(protocol, channel, *, arrivals=None, **kwargs):
    """(vectorized, scalar) results for one workload, same seed streams."""
    arrivals = arrivals or PoissonArrivals(0.15)
    common = dict(channel=channel, trials=12, rounds=256, warmup=32, seed=7)
    common.update(kwargs)
    vectorized = run_open(protocol, arrivals, **common)
    scalar = run_open(protocol, arrivals, batch=False, **common)
    return vectorized, scalar


class TestEngineSelection:
    def test_schedule_protocol_routes_to_open_schedule(self):
        assert (
            select_open_engine(DecayProtocol(N)) == ENGINE_OPEN_SCHEDULE
        )

    def test_history_protocol_routes_to_open_history(self):
        assert select_open_engine(WillardProtocol(N)) == ENGINE_OPEN_HISTORY

    def test_batch_false_forces_the_scalar_oracle(self):
        assert (
            select_open_engine(DecayProtocol(N), False) == ENGINE_OPEN_SCALAR
        )

    def test_non_batchable_crash_model_is_rejected_everywhere(self):
        rejoining = CrashModel(0.1, rejoin_after=3)
        for batch in (None, True, False):
            with pytest.raises(ValueError, match="rejoin"):
                select_open_engine(DecayProtocol(N), batch, model=rejoining)


class TestBitIdentity:
    @pytest.mark.parametrize(
        "name,protocol,channel",
        [
            ("decay-nocd", DecayProtocol(N), without_collision_detection()),
            ("willard-cd", WillardProtocol(N), with_collision_detection()),
            (
                "fixedp-nocd",
                FixedProbabilityProtocol(12),
                without_collision_detection(),
            ),
            (
                "decay-noise",
                DecayProtocol(N),
                without_collision_detection(
                    NoisyChannel(
                        silence_to_collision=0.08,
                        collision_to_silence=0.05,
                        success_erasure=0.1,
                    )
                ),
            ),
            (
                "willard-jam",
                WillardProtocol(N),
                with_collision_detection(ObliviousJammer(budget=40, period=3)),
            ),
            (
                "willard-reactive",
                WillardProtocol(N),
                with_collision_detection(
                    ReactiveJammer(budget=30, quiet_streak=2)
                ),
            ),
            (
                "decay-crash",
                DecayProtocol(N),
                without_collision_detection(
                    CrashModel(0.05, rejoin_after=0)
                ),
            ),
        ],
    )
    def test_vectorized_matches_scalar_store(self, name, protocol, channel):
        vectorized, scalar = run_pair(protocol, channel)
        assert scalar.engine == ENGINE_OPEN_SCALAR
        assert vectorized.engine != ENGINE_OPEN_SCALAR
        assert vectorized.store == scalar.store, name

    def test_identity_holds_with_timeout_and_bursty_arrivals(self):
        vectorized, scalar = run_pair(
            DecayProtocol(N),
            without_collision_detection(),
            arrivals=ZipfHotspotArrivals(0.12, alpha=1.0, max_batch=6),
            timeout=40,
            capacity=32,
        )
        assert vectorized.store == scalar.store
        assert vectorized.store.timed_out == scalar.store.timed_out


#: Retry x admission combinations that exercise every policy code path:
#: jittered backoff (retry draw column), shedding (admission draw
#: column), token-bucket state, immediate-rejoin storms, and budgets.
POLICY_COMBOS = [
    (
        "backoff-jitter+shed",
        lambda: ExponentialBackoffPolicy(base=2, cap=32, jitter=4, budget=5),
        lambda: OccupancySheddingPolicy(threshold=0.4, power=2.0),
    ),
    (
        "immediate+token-bucket",
        lambda: ImmediateRetryPolicy(),
        lambda: TokenBucketPolicy(rate=0.35, burst=3.0),
    ),
    (
        "backoff-plain+capacity",
        lambda: ExponentialBackoffPolicy(base=1, cap=16, jitter=0, budget=2),
        lambda: HardCapacityPolicy(),
    ),
    (
        "give-up+shed",
        lambda: GiveUpPolicy(),
        lambda: OccupancySheddingPolicy(threshold=0.25),
    ),
]


class TestPolicyBitIdentity:
    """The acceptance bar: the lifecycle is engine-neutral, bit for bit."""

    @pytest.mark.parametrize(
        "name,retry,admission", POLICY_COMBOS, ids=[c[0] for c in POLICY_COMBOS]
    )
    def test_schedule_engine_matches_scalar(self, name, retry, admission):
        vectorized, scalar = run_pair(
            DecayProtocol(N),
            without_collision_detection(),
            arrivals=PoissonArrivals(0.3),
            capacity=12,
            timeout=24,
            retry=retry(),
            admission=admission(),
        )
        assert vectorized.engine == ENGINE_OPEN_SCHEDULE
        assert vectorized.store == scalar.store, name

    @pytest.mark.parametrize(
        "name,retry,admission", POLICY_COMBOS, ids=[c[0] for c in POLICY_COMBOS]
    )
    def test_history_engine_matches_scalar(self, name, retry, admission):
        vectorized, scalar = run_pair(
            WillardProtocol(N),
            with_collision_detection(),
            arrivals=PoissonArrivals(0.3),
            capacity=12,
            timeout=30,
            retry=retry(),
            admission=admission(),
        )
        assert vectorized.engine == ENGINE_OPEN_HISTORY
        assert vectorized.store == scalar.store, name

    def test_identity_with_policies_and_fault_model(self):
        """All five uniform columns live at once: band, winner, fault,
        admission, retry."""
        vectorized, scalar = run_pair(
            DecayProtocol(N),
            without_collision_detection(
                NoisyChannel(
                    silence_to_collision=0.08,
                    collision_to_silence=0.05,
                    success_erasure=0.1,
                )
            ),
            arrivals=PoissonArrivals(0.3),
            capacity=12,
            timeout=24,
            retry=ExponentialBackoffPolicy(base=2, cap=16, jitter=3),
            admission=OccupancySheddingPolicy(threshold=0.3),
        )
        assert vectorized.store == scalar.store
        assert vectorized.store.retried > 0


class TestZeroPolicyPinning:
    """Default policies must reproduce the pre-policy driver exactly.

    The expected stores are pinned from the PR 7 driver (captured before
    the lifecycle refactor); equality on every shared key proves the
    refactor is invisible when no policy is active.
    """

    def test_decay_store_is_unchanged(self):
        result = run_open(
            DecayProtocol(N),
            PoissonArrivals(0.2),
            channel=without_collision_detection(),
            trials=6,
            rounds=200,
            warmup=20,
            capacity=16,
            timeout=40,
            seed=13,
        )
        data = result.store.to_dict()
        expected = {
            "hist": [
                0, 40, 19, 11, 10, 14, 6, 6, 11, 6, 6, 9, 8, 4, 6, 3, 3, 5,
                3, 3, 2, 5, 4, 3, 2, 2, 0, 2, 1, 1, 1, 2, 0, 0, 2, 2, 0, 2,
            ],
            "arrivals": 244,
            "dropped": 0,
            "timed_out": 5,
            "in_flight": 13,
            "round_slots": 1080,
        }
        for key, value in expected.items():
            assert data[key] == value, key
        assert data["attempts"] == data["arrivals"]
        assert data["retried"] == data["abandoned"] == data["in_orbit"] == 0

    def test_willard_store_is_unchanged(self):
        result = run_open(
            WillardProtocol(N),
            PoissonArrivals(0.08),
            channel=with_collision_detection(),
            trials=5,
            rounds=160,
            warmup=0,
            capacity=8,
            seed=5,
        )
        data = result.store.to_dict()
        expected = {
            "hist": [0, 2, 3, 6, 16, 8, 8, 7, 8, 3, 2, 1, 1, 2, 0, 0, 0, 0, 2],
            "arrivals": 73,
            "dropped": 0,
            "timed_out": 0,
            "in_flight": 4,
            "round_slots": 800,
        }
        for key, value in expected.items():
            assert data[key] == value, key

    def test_explicit_defaults_match_omitted_policies(self):
        kwargs = dict(
            channel=without_collision_detection(),
            trials=6,
            rounds=128,
            capacity=8,
            timeout=20,
            seed=17,
        )
        implicit = run_open(DecayProtocol(N), PoissonArrivals(0.3), **kwargs)
        explicit = run_open(
            DecayProtocol(N),
            PoissonArrivals(0.3),
            retry=GiveUpPolicy(),
            admission=HardCapacityPolicy(),
            **kwargs,
        )
        assert implicit.store == explicit.store


class TestDeterminismAndSharding:
    def test_same_seed_reproduces_the_store(self):
        first, _ = run_pair(DecayProtocol(N), without_collision_detection())
        second, _ = run_pair(DecayProtocol(N), without_collision_detection())
        assert first.store == second.store

    def test_shards_merge_to_the_whole_run(self):
        protocol, channel = DecayProtocol(N), without_collision_detection()
        arrivals = PoissonArrivals(0.2)
        common = dict(channel=channel, rounds=200, warmup=20, seed=11)
        whole = run_open(protocol, arrivals, trials=13, **common)
        left = run_open(protocol, arrivals, trials=8, **common)
        right = run_open(
            protocol, arrivals, trials=5, trial_offset=8, **common
        )
        assert left.store.merge(right.store) == whole.store

    def test_shards_merge_exactly_with_policies_active(self):
        protocol, channel = DecayProtocol(N), without_collision_detection()
        arrivals = PoissonArrivals(0.35)
        common = dict(
            channel=channel,
            rounds=200,
            warmup=0,
            capacity=10,
            timeout=20,
            seed=11,
        )
        policies = dict(
            retry=ExponentialBackoffPolicy(base=2, cap=16, jitter=3, budget=4),
            admission=OccupancySheddingPolicy(threshold=0.3),
        )
        whole = run_open(protocol, arrivals, trials=9, **common, **policies)
        left = run_open(protocol, arrivals, trials=4, **common, **policies)
        right = run_open(
            protocol, arrivals, trials=5, trial_offset=4, **common, **policies
        )
        assert left.store.merge(right.store) == whole.store
        assert whole.store.retried > 0

    def test_trial_offset_changes_the_streams(self):
        protocol, channel = DecayProtocol(N), without_collision_detection()
        arrivals = PoissonArrivals(0.2)
        common = dict(channel=channel, trials=4, rounds=128, seed=11)
        base = run_open(protocol, arrivals, **common)
        offset = run_open(protocol, arrivals, trial_offset=4, **common)
        assert base.store != offset.store


class TestAccounting:
    def test_requests_are_conserved_without_warmup(self):
        result = run_open(
            DecayProtocol(N),
            PoissonArrivals(0.3),
            channel=without_collision_detection(),
            trials=8,
            rounds=300,
            warmup=0,
            capacity=16,
            timeout=60,
            seed=3,
        )
        store = result.store
        assert store.arrivals > 0
        assert store.arrivals == (
            store.completed + store.dropped + store.timed_out + store.in_flight
        )

    def test_requests_are_conserved_with_retries_active(self):
        result = run_open(
            DecayProtocol(N),
            PoissonArrivals(0.5),
            channel=without_collision_detection(),
            trials=6,
            rounds=150,
            warmup=0,
            capacity=8,
            timeout=12,
            retry=ExponentialBackoffPolicy(base=1, cap=8, jitter=2, budget=3),
            admission=TokenBucketPolicy(rate=0.4, burst=2.0),
            seed=3,
        )
        store = result.store
        assert store.retried > 0 and store.abandoned > 0
        assert store.arrivals == (
            store.completed
            + store.dropped
            + store.timed_out
            + store.abandoned
            + store.in_flight
            + store.in_orbit
        )
        # attempts = fresh presentations + orbit rejoins; every rejoin
        # was first counted as a retry, and orbit residents have not yet
        # re-presented.
        assert store.attempts >= store.arrivals
        assert store.attempts <= store.arrivals + store.retried

    def test_retry_budget_bounds_abandonment(self):
        """With budget b, a request dies only after b retries; give-up
        (budget 0) keeps the PR 7 counters and never abandons."""
        kwargs = dict(
            channel=without_collision_detection(),
            trials=4,
            rounds=200,
            warmup=0,
            capacity=8,
            timeout=10,
            seed=21,
        )
        give_up = run_open(
            DecayProtocol(N), PoissonArrivals(0.6), **kwargs
        ).store
        assert give_up.abandoned == 0 and give_up.retried == 0
        budgeted = run_open(
            DecayProtocol(N),
            PoissonArrivals(0.6),
            retry=ImmediateRetryPolicy(budget=2),
            **kwargs,
        ).store
        assert budgeted.abandoned > 0
        # Every abandonment consumed exactly `budget` retries; other
        # retreads are still circulating or completed.
        assert budgeted.retried >= 2 * budgeted.abandoned

    def test_capacity_overflow_drops(self):
        result = run_open(
            DecayProtocol(N),
            PoissonArrivals(2.0),  # far beyond service capacity
            channel=without_collision_detection(),
            trials=4,
            rounds=200,
            capacity=8,
            seed=0,
        )
        assert result.store.dropped > 0

    def test_timeout_bounds_the_measured_sojourns(self):
        result = run_open(
            DecayProtocol(N),
            PoissonArrivals(0.6),
            channel=without_collision_detection(),
            trials=8,
            rounds=300,
            timeout=25,
            seed=5,
        )
        summary = result.store.summary()
        assert result.store.timed_out > 0
        assert summary.maximum <= 25

    def test_silent_stream_measures_nothing(self):
        result = run_open(
            DecayProtocol(N),
            SilentArrivals(),
            channel=without_collision_detection(),
            trials=4,
            rounds=64,
            seed=0,
        )
        store = result.store
        assert store.arrivals == 0 and store.completed == 0
        assert store.round_slots == 4 * 64
        assert "n/a" in store.summary().render()

    def test_warmup_excludes_early_completions(self):
        kwargs = dict(
            channel=without_collision_detection(),
            trials=8,
            rounds=256,
            seed=9,
        )
        cold = run_open(DecayProtocol(N), PoissonArrivals(0.2), **kwargs)
        warm = run_open(
            DecayProtocol(N), PoissonArrivals(0.2), warmup=128, **kwargs
        )
        assert warm.store.completed < cold.store.completed
        assert warm.store.round_slots == 8 * 128


class TestValidation:
    def test_cd_protocol_needs_cd_channel(self):
        with pytest.raises(ProtocolError):
            run_open(
                WillardProtocol(N),
                PoissonArrivals(0.1),
                channel=without_collision_detection(),
                trials=2,
                rounds=16,
            )

    def test_parameter_bounds(self):
        good = dict(
            channel=without_collision_detection(), trials=2, rounds=16
        )
        for bad in (
            {"trials": 0},
            {"rounds": 0},
            {"warmup": 16},
            {"warmup": -1},
            {"capacity": 0},
            {"timeout": 0},
            {"trial_offset": -1},
        ):
            with pytest.raises(ValueError):
                run_open(
                    DecayProtocol(N),
                    PoissonArrivals(0.1),
                    **{**good, **bad},
                )

    def test_capacity_error_message_is_actionable(self):
        with pytest.raises(ValueError, match="capacity must be >= 1"):
            run_open(
                DecayProtocol(N),
                PoissonArrivals(0.1),
                channel=without_collision_detection(),
                trials=2,
                rounds=16,
                capacity=0,
            )

    def test_policy_arguments_must_be_policies(self):
        good = dict(
            channel=without_collision_detection(), trials=2, rounds=16
        )
        with pytest.raises(ValueError, match="RetryPolicy"):
            run_open(
                DecayProtocol(N),
                PoissonArrivals(0.1),
                retry="backoff",
                **good,
            )
        with pytest.raises(ValueError, match="AdmissionPolicy"):
            run_open(
                DecayProtocol(N),
                PoissonArrivals(0.1),
                admission="shed",
                **good,
            )
