"""Graceful-degradation acceptance: retry storms vs. bounded backoff.

The overload story the lifecycle policies exist to tell, pinned as a
test.  One decay-served open channel is pushed well above saturation
(offered load ~4x the service ceiling) under three policy regimes:

* ``give-up`` - the pre-policy baseline.  Goodput sits at the service
  ceiling and every surplus request dies at its timeout; this run also
  *establishes* saturation (offered load far above measured goodput).
* ``immediate`` rejoin with no admission control - the retry storm.
  Timed-out requests re-present every round, the buffer stays pinned at
  capacity, per-epoch contention stays high, and goodput *collapses
  below the give-up baseline* while attempts explode and the sojourn
  tail stretches across the whole run: retrying made service strictly
  worse.  This is the metastable regime - the backlog is self-sustaining
  at a service rate below what the same channel delivers when overflow
  is simply dropped.
* capped ``backoff`` with a finite budget plus occupancy ``shed`` - the
  graceful policy.  Shedding keeps the admitted population below the
  collapse region, backoff drains the orbit instead of hammering the
  gate, and the budget turns hopeless requests into clean abandonment:
  goodput recovers most of the baseline and p99 stays bounded by a small
  multiple of the timeout instead of the run length.

Thresholds are deliberately loose (the effect sizes are ~25-40% on
goodput and ~4x on p99 across seeds) so the suite pins the *phenomenon*,
not one stream's noise.
"""

import pytest

from repro.channel import without_collision_detection
from repro.opensys import (
    ExponentialBackoffPolicy,
    GiveUpPolicy,
    HardCapacityPolicy,
    ImmediateRetryPolicy,
    OccupancySheddingPolicy,
    run_open,
)
from repro.opensys.arrivals import PoissonArrivals
from repro.protocols.decay import DecayProtocol

RATE = 0.8  # offered load, requests/round - ~4x the service ceiling
TIMEOUT = 24


def serve(retry, admission, seed=42):
    return run_open(
        DecayProtocol(64),
        PoissonArrivals(RATE),
        channel=without_collision_detection(),
        trials=24,
        rounds=600,
        warmup=64,
        capacity=16,
        timeout=TIMEOUT,
        retry=retry,
        admission=admission,
        seed=seed,
    ).store.summary()


@pytest.fixture(scope="module")
def regimes():
    baseline = serve(GiveUpPolicy(), HardCapacityPolicy())
    storm = serve(ImmediateRetryPolicy(), HardCapacityPolicy())
    graceful = serve(
        ExponentialBackoffPolicy(base=2, cap=32, jitter=8, budget=4),
        OccupancySheddingPolicy(threshold=0.4),
    )
    return baseline, storm, graceful


class TestRetryStormMetastability:
    def test_the_load_is_above_saturation(self, regimes):
        baseline, _, _ = regimes
        assert RATE > 2 * baseline.throughput
        assert baseline.timed_out > 0  # overflow visibly dies

    def test_immediate_rejoin_collapses_goodput(self, regimes):
        baseline, storm, _ = regimes
        assert storm.throughput < 0.85 * baseline.throughput
        # The storm itself: admission presentations dwarf real load, and
        # the sojourn tail stretches an order of magnitude past the
        # timeout that bounds the baseline.
        assert storm.attempts > 50 * storm.arrivals
        assert storm.p99 > 10 * TIMEOUT
        assert baseline.p99 <= TIMEOUT

    def test_backoff_plus_shedding_recovers(self, regimes):
        baseline, storm, graceful = regimes
        # Positive goodput, most of the baseline recovered, strictly
        # better than the storm at matched offered load.
        assert graceful.throughput > 0.1
        assert graceful.throughput > 1.1 * storm.throughput
        assert graceful.throughput > 0.8 * baseline.throughput
        # Bounded tail: a small multiple of the timeout, not of the run.
        assert graceful.p99 < 8 * TIMEOUT
        assert graceful.p99 < 0.5 * storm.p99
        # Degradation is *managed*: overload turns into bounded retries
        # and clean abandonment instead of an unbounded orbit.
        assert graceful.abandoned > 0
        assert graceful.attempts < 10 * graceful.arrivals
        assert graceful.in_orbit < storm.in_orbit
