"""Unit tests for the request-lifecycle policy registry."""

import numpy as np
import pytest

from repro.opensys.policies import (
    ADMISSION_POLICIES,
    RETRY_POLICIES,
    ExponentialBackoffPolicy,
    GiveUpPolicy,
    HardCapacityPolicy,
    ImmediateRetryPolicy,
    OccupancySheddingPolicy,
    TokenBucketPolicy,
    admission_policy_from_dict,
    retry_policy_from_dict,
    weyl_uniforms,
)


class TestWeylUniforms:
    def test_stays_in_unit_interval(self):
        offsets = np.arange(50, dtype=np.int64)
        u = weyl_uniforms(0.9999, offsets)
        assert ((u >= 0.0) & (u < 1.0)).all()

    def test_deterministic_and_distinct(self):
        offsets = np.arange(8, dtype=np.int64)
        a = weyl_uniforms(0.25, offsets)
        b = weyl_uniforms(0.25, offsets)
        np.testing.assert_array_equal(a, b)
        assert np.unique(a).size == a.size

    def test_offset_zero_is_identity(self):
        u = weyl_uniforms(0.625, np.zeros(1, dtype=np.int64))
        assert u[0] == 0.625


class TestGiveUp:
    def test_never_retries(self):
        policy = GiveUpPolicy()
        assert policy.budget == 0
        assert not policy.allows(0)
        assert not policy.allows(np.zeros(3, dtype=np.int64)).any()
        assert policy.name == "give-up"
        assert not policy.needs_draws


class TestImmediate:
    def test_rejoins_next_round(self):
        policy = ImmediateRetryPolicy()
        np.testing.assert_array_equal(
            policy.delays(np.asarray([1, 2, 9]), None), [1, 1, 1]
        )
        assert policy.allows(10 ** 6)
        assert not policy.needs_draws

    def test_budget_limits_retries(self):
        policy = ImmediateRetryPolicy(budget=3)
        assert policy.allows(2)
        assert not policy.allows(3)
        np.testing.assert_array_equal(
            policy.allows(np.asarray([0, 2, 3, 5])), [True, True, False, False]
        )

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError, match="budget"):
            ImmediateRetryPolicy(budget=-1)


class TestBackoff:
    def test_delays_double_then_cap(self):
        policy = ExponentialBackoffPolicy(base=2, cap=16, jitter=0)
        retries = np.arange(1, 9, dtype=np.int64)
        np.testing.assert_array_equal(
            policy.delays(retries, None), [2, 4, 8, 16, 16, 16, 16, 16]
        )

    def test_jitter_adds_bounded_offset(self):
        policy = ExponentialBackoffPolicy(base=4, cap=4, jitter=5)
        assert policy.needs_draws
        retries = np.ones(6, dtype=np.int64)
        jitter_u = np.asarray([0.0, 0.1, 0.5, 0.9, 0.999, 0.1666])
        delays = policy.delays(retries, jitter_u)
        assert ((delays >= 4) & (delays <= 4 + 5)).all()
        assert delays[0] == 4  # u = 0 -> no jitter
        assert delays[4] == 9  # u ~ 1 -> full jitter

    def test_no_jitter_needs_no_draws(self):
        assert not ExponentialBackoffPolicy(jitter=0).needs_draws

    def test_jitter_without_draws_is_an_error(self):
        policy = ExponentialBackoffPolicy(jitter=2)
        with pytest.raises(ValueError, match="jitter"):
            policy.delays(np.ones(1, dtype=np.int64), None)

    def test_retry_numbers_are_one_based(self):
        policy = ExponentialBackoffPolicy()
        with pytest.raises(ValueError, match="1-based"):
            policy.delays(np.asarray([0]), None)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"base": 0}, "base"),
            ({"base": 4, "cap": 2}, "cap"),
            ({"jitter": -1}, "jitter"),
            ({"budget": -2}, "budget"),
        ],
    )
    def test_rejects_bad_parameters(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ExponentialBackoffPolicy(**kwargs)


class TestHardCapacity:
    def test_grants_everything(self):
        state = HardCapacityPolicy().state(trials=3)
        candidates = np.asarray([0, 2, 7], dtype=np.int64)
        quota = state.quota(np.zeros(3, dtype=np.int64), candidates, 8, None)
        np.testing.assert_array_equal(quota, candidates)
        state.commit(candidates)  # no-op


class TestTokenBucket:
    def test_meters_to_rate(self):
        state = TokenBucketPolicy(rate=0.5, burst=2.0).state(trials=1)
        occupancy = np.zeros(1, dtype=np.int64)
        candidates = np.full(1, 10, dtype=np.int64)
        grants = []
        for _ in range(8):
            quota = state.quota(occupancy, candidates, 100, None)
            granted = min(int(quota[0]), 10)
            state.commit(np.asarray([granted], dtype=np.int64))
            grants.append(granted)
        # Bucket starts full (2 tokens), then refills 0.5/round: the
        # long-run admission rate is the configured rate.
        assert grants[0] == 2
        assert sum(grants) <= 2 + 0.5 * len(grants)
        assert sum(grants[2:]) >= 0.5 * 6 - 1

    def test_burst_caps_idle_accumulation(self):
        state = TokenBucketPolicy(rate=1.0, burst=3.0).state(trials=1)
        none = np.zeros(1, dtype=np.int64)
        for _ in range(10):  # idle: quota computed, nothing admitted
            quota = state.quota(none, none, 100, None)
            state.commit(none)
        assert int(quota[0]) == 3

    @pytest.mark.parametrize(
        "kwargs", [{"rate": 0.0}, {"rate": -1.0}, {"rate": 1.0, "burst": 0.5}]
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            TokenBucketPolicy(**kwargs)


class TestShedding:
    def test_probability_ramp(self):
        policy = OccupancySheddingPolicy(threshold=0.5, power=1.0)
        frac = np.asarray([0.0, 0.5, 0.75, 1.0])
        np.testing.assert_allclose(
            policy.shed_probability(frac), [0.0, 0.0, 0.5, 1.0]
        )

    def test_power_shapes_the_ramp(self):
        gentle = OccupancySheddingPolicy(threshold=0.0, power=2.0)
        np.testing.assert_allclose(
            gentle.shed_probability(np.asarray([0.5])), [0.25]
        )

    def test_quota_is_all_or_nothing_per_round(self):
        policy = OccupancySheddingPolicy(threshold=0.0, power=1.0)
        assert policy.needs_draws
        state = policy.state(trials=2)
        occupancy = np.asarray([5, 5], dtype=np.int64)
        candidates = np.asarray([3, 3], dtype=np.int64)
        quota = state.quota(
            occupancy, candidates, 10, np.asarray([0.1, 0.9])
        )
        np.testing.assert_array_equal(quota, [0, 3])  # shed_p = 0.5

    @pytest.mark.parametrize(
        "kwargs", [{"threshold": 1.0}, {"threshold": -0.1}, {"power": 0.0}]
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            OccupancySheddingPolicy(**kwargs)


class TestRegistries:
    def test_retry_kinds_build(self):
        assert set(RETRY_POLICIES) == {"give-up", "immediate", "backoff"}
        assert isinstance(
            retry_policy_from_dict({"kind": "give-up"}), GiveUpPolicy
        )
        immediate = retry_policy_from_dict({"kind": "immediate", "budget": 2})
        assert isinstance(immediate, ImmediateRetryPolicy)
        assert immediate.budget == 2
        backoff = retry_policy_from_dict(
            {"kind": "backoff", "base": 2, "cap": 8, "jitter": 3, "budget": 4}
        )
        assert isinstance(backoff, ExponentialBackoffPolicy)
        assert (backoff.base, backoff.cap, backoff.jitter, backoff.budget) == (
            2, 8, 3, 4,
        )

    def test_admission_kinds_build(self):
        assert set(ADMISSION_POLICIES) == {"capacity", "token-bucket", "shed"}
        assert isinstance(
            admission_policy_from_dict({"kind": "capacity"}), HardCapacityPolicy
        )
        bucket = admission_policy_from_dict(
            {"kind": "token-bucket", "rate": 0.25, "burst": 4}
        )
        assert isinstance(bucket, TokenBucketPolicy)
        assert (bucket.rate, bucket.burst) == (0.25, 4.0)
        shed = admission_policy_from_dict({"kind": "shed", "threshold": 0.25})
        assert isinstance(shed, OccupancySheddingPolicy)
        assert shed.threshold == 0.25

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown retry policy"):
            retry_policy_from_dict({"kind": "telepathy"})
        with pytest.raises(ValueError, match="unknown admission policy"):
            admission_policy_from_dict({"kind": "bouncer"})

    def test_unknown_parameters_are_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            retry_policy_from_dict({"kind": "give-up", "base": 2})
        with pytest.raises(ValueError, match="unknown parameter"):
            admission_policy_from_dict({"kind": "shed", "rate": 1.0})

    def test_token_bucket_requires_rate(self):
        with pytest.raises(ValueError, match="rate"):
            admission_policy_from_dict({"kind": "token-bucket"})

    def test_non_mapping_is_rejected(self):
        with pytest.raises(ValueError, match="mapping"):
            retry_policy_from_dict("backoff")
