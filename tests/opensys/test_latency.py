"""Tests for the exact sojourn-latency store and its summaries."""

import math

import numpy as np
import pytest

from repro.opensys import LatencyStore, LatencySummary


def store_with(sojourns, **counters) -> LatencyStore:
    store = LatencyStore()
    store.record_many(sojourns)
    for name, value in counters.items():
        setattr(store, name, value)
    return store


class TestRecording:
    def test_record_and_record_many_agree(self):
        one_by_one = LatencyStore()
        for sojourn in [3, 1, 7, 3, 3]:
            one_by_one.record(sojourn)
        batched = store_with([3, 1, 7, 3, 3])
        assert one_by_one == batched

    def test_rejects_nonpositive_sojourns(self):
        store = LatencyStore()
        with pytest.raises(ValueError):
            store.record(0)
        with pytest.raises(ValueError):
            store.record_many([2, 0, 3])

    def test_empty_batch_is_a_noop(self):
        store = LatencyStore()
        store.record_many(np.array([], dtype=np.int64))
        assert store.completed == 0


class TestPercentiles:
    def test_nearest_rank_on_known_data(self):
        # 100 completions: sojourns 1..100, one each.
        store = store_with(np.arange(1, 101))
        assert store.percentile(0.50) == 50.0
        assert store.percentile(0.90) == 90.0
        assert store.percentile(0.99) == 99.0
        assert store.percentile(1.0) == 100.0
        assert store.percentile(0.0) == 1.0  # rank clamps to the minimum

    def test_percentiles_match_numpy_nearest_rank(self):
        rng = np.random.default_rng(5)
        data = rng.integers(1, 500, size=997)
        store = store_with(data)
        ordered = np.sort(data)
        for q in (0.1, 0.5, 0.9, 0.99):
            rank = max(1, math.ceil(q * data.size))
            assert store.percentile(q) == float(ordered[rank - 1])

    def test_rejects_out_of_range_level(self):
        with pytest.raises(ValueError):
            store_with([1]).percentile(1.5)


class TestSummary:
    def test_empty_store_is_explicit_not_fabricated(self):
        summary = LatencyStore().summary()
        assert summary.completed == 0
        assert math.isnan(summary.p50) and math.isnan(summary.mean)
        assert math.isnan(summary.throughput)
        assert "n/a" in summary.render()

    def test_statistics_on_known_data(self):
        store = store_with([2, 4, 4, 10], round_slots=100, arrivals=6, dropped=1)
        summary = store.summary()
        assert summary.completed == 4
        assert summary.mean == pytest.approx(5.0)
        assert summary.maximum == 10.0
        assert summary.throughput == pytest.approx(0.04)
        assert summary.arrivals == 6 and summary.dropped == 1

    def test_summary_round_trips_with_nans_as_null(self):
        for store in (LatencyStore(), store_with([1, 5], round_slots=10)):
            summary = store.summary()
            again = LatencySummary.from_dict(summary.to_dict())
            assert again == summary or (
                math.isnan(again.p50) and math.isnan(summary.p50)
            )

    def test_render_mentions_the_key_statistics(self):
        text = store_with([2, 4], round_slots=10, timed_out=3).summary().render()
        assert "p99" in text and "timed-out 3" in text


class TestMergeAndSerialization:
    def test_merge_equals_single_store(self):
        left = store_with([1, 2, 2], arrivals=3, round_slots=10)
        right = store_with([2, 9], arrivals=2, dropped=1, round_slots=10)
        merged = left.merge(right)
        assert merged == store_with(
            [1, 2, 2, 2, 9], arrivals=5, dropped=1, round_slots=20
        )

    def test_merge_does_not_mutate_operands(self):
        left, right = store_with([1]), store_with([5])
        before = left.to_dict()
        left.merge(right)
        assert left.to_dict() == before

    def test_dict_round_trip_is_exact(self):
        store = store_with([3, 3, 8], arrivals=4, timed_out=1, round_slots=64)
        assert LatencyStore.from_dict(store.to_dict()) == store

    def test_serialization_trims_growth_history(self):
        small = store_with([2])
        grown = store_with([2, 500])
        # Shrink `grown` back to the same content by merging nothing and
        # rebuilding: content-equal stores serialize identically even if
        # their internal buffers differ.
        rebuilt = LatencyStore.from_dict(small.to_dict())
        rebuilt._ensure(1000)
        assert rebuilt.to_dict() == small.to_dict()
        assert grown.to_dict()["hist"][-1] == 1

    def test_from_dict_rejects_bad_histograms(self):
        with pytest.raises(ValueError):
            LatencyStore.from_dict({"hist": [0, -1]})
        with pytest.raises(ValueError):
            LatencyStore.from_dict({"hist": [2, 1]})
