"""Property-based tests (hypothesis) for the adversarial channel models.

The invariants every engine leans on:

* a budgeted jammer never spends more than its budget, whatever feedback
  sequence it observes - scalar and batch states alike;
* null-parameter models (zero budget, all-zero probabilities) reduce to
  the faithful channel and run bit-identically to no model at all;
* serialization round-trips exactly for every constructible model.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import (
    AdaptiveAdversary,
    Channel,
    CrashModel,
    NoisyChannel,
    ObliviousJammer,
    ReactiveJammer,
    channel_model_from_dict,
    run_uniform,
    run_uniform_batch,
)
from repro.channel.models import FB_COLLISION, FB_SILENCE, FB_SUCCESS
from repro.core.feedback import Feedback
from repro.protocols.decay import DecayProtocol

N = 2**8

_FEEDBACKS = [Feedback.SILENCE, Feedback.SUCCESS, Feedback.COLLISION]

feedback_sequences = st.lists(
    st.sampled_from(_FEEDBACKS), min_size=1, max_size=60
)

oblivious_jammers = st.builds(
    ObliviousJammer,
    budget=st.integers(min_value=0, max_value=20),
    start=st.integers(min_value=1, max_value=10),
    period=st.integers(min_value=1, max_value=5),
)

reactive_jammers = st.builds(
    ReactiveJammer,
    budget=st.integers(min_value=0, max_value=20),
    quiet_streak=st.integers(min_value=1, max_value=5),
)

adaptive_adversaries = st.builds(
    AdaptiveAdversary,
    budget=st.integers(min_value=0, max_value=20),
    strategy=st.sampled_from(["greedy", "streak", "scheduler"]),
    patience=st.integers(min_value=1, max_value=5),
    mode=st.sampled_from(["front", "back"]),
)

budgeted_models = st.one_of(
    oblivious_jammers, reactive_jammers, adaptive_adversaries
)

probabilities = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)

any_model = st.one_of(
    oblivious_jammers,
    reactive_jammers,
    adaptive_adversaries,
    st.builds(
        NoisyChannel,
        silence_to_collision=probabilities,
        collision_to_silence=probabilities,
        success_erasure=probabilities,
    ),
    st.builds(
        CrashModel,
        probability=probabilities,
        rejoin_after=st.one_of(
            st.none(), st.integers(min_value=0, max_value=10)
        ),
    ),
)


class TestJamBudgetInvariant:
    @given(budgeted_models, feedback_sequences)
    def test_scalar_state_never_exceeds_budget(self, model, feedbacks):
        rng = np.random.default_rng(0)
        state = model.scalar_state()
        delivered = [
            state.deliver(round_index, feedback, rng)
            for round_index, feedback in enumerate(feedbacks, start=1)
        ]
        assert state.jams_used <= model.budget
        # Every jam manifests as a delivered collision.
        forced = sum(
            1
            for before, after in zip(feedbacks, delivered)
            if after is Feedback.COLLISION and before is not Feedback.COLLISION
        )
        assert forced <= model.budget

    @given(
        budgeted_models,
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0),
    )
    def test_batch_state_never_exceeds_budget(
        self, model, trials, rounds, seed
    ):
        rng = np.random.default_rng(seed)
        state = model.batch_state(trials)
        forced = np.zeros(trials, dtype=np.int64)
        for round_index in range(1, rounds + 1):
            codes = rng.integers(0, 3, size=trials)
            before = codes.copy()
            after = state.perturb(round_index, codes, None)
            forced += (after == FB_COLLISION) & (before != FB_COLLISION)
        assert (forced <= model.budget).all()

    @given(
        adaptive_adversaries,
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0),
    )
    def test_adaptive_budget_conserved_under_filter(
        self, model, trials, rounds, seed
    ):
        """``remaining + spent == budget`` per trial, and trial
        retirement (``BatchFaultState.filter``) reindexes the adversary's
        accounts and strategy arrays consistently with the survivors."""
        rng = np.random.default_rng(seed)
        state = model.batch_state(trials)
        live = trials
        for round_index in range(1, rounds + 1):
            codes = rng.integers(0, 3, size=live)
            state.perturb(round_index, codes, None)
            assert (state.remaining + state.spent == model.budget).all()
            assert (state.remaining >= 0).all()
            # Retire a random subset, the way the engines drop solved
            # trials; the adversary must follow the survivors.
            keep = rng.random(live) < 0.8
            if not keep.any():
                keep[rng.integers(live)] = True
            expected_remaining = state.remaining[keep].copy()
            state.filter(keep)
            live = int(keep.sum())
            assert state.remaining.shape == (live,)
            assert (state.remaining == expected_remaining).all()
            assert (state.remaining + state.spent == model.budget).all()
            for array in state.arrays.values():
                assert array.shape[0] == live

    @given(oblivious_jammers)
    def test_schedule_spends_exactly_the_budget_eventually(self, model):
        horizon = model.start + model.period * (model.budget + 3)
        jammed = sum(model.jams_round(r) for r in range(1, horizon + 1))
        assert jammed == model.budget


class TestNullReduction:
    @given(
        st.one_of(
            oblivious_jammers.map(
                lambda m: ObliviousJammer(0, m.start, m.period)
            ),
            reactive_jammers.map(lambda m: ReactiveJammer(0, m.quiet_streak)),
            adaptive_adversaries.map(
                lambda m: AdaptiveAdversary(
                    0, strategy=m.strategy, patience=m.patience, mode=m.mode
                )
            ),
            st.just(NoisyChannel()),
            st.just(CrashModel(probability=0.0)),
            st.just(CrashModel(probability=0.0, rejoin_after=4)),
        )
    )
    def test_null_models_report_null_and_reduce(self, model):
        assert model.is_null()
        assert Channel(False, model).active_model is None
        assert Channel(True, model).model_label() == "faithful"

    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from(
            [
                ObliviousJammer(budget=0, start=5, period=2),
                ReactiveJammer(budget=0, quiet_streak=3),
                AdaptiveAdversary(budget=0, strategy="greedy"),
                AdaptiveAdversary(budget=0, strategy="streak", patience=3),
                AdaptiveAdversary(budget=0, strategy="scheduler", mode="front"),
                NoisyChannel(),
                CrashModel(probability=0.0),
            ]
        ),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_null_models_bit_identical_on_engines(self, model, seed):
        """Scalar and batch runs with a null model reproduce the
        faithful runs of the same generator bit for bit."""
        protocol = DecayProtocol(N)
        faithful = Channel(False)
        nulled = faithful.with_model(model)

        scalar_a = run_uniform(
            protocol, 9, np.random.default_rng(seed), channel=faithful,
            max_rounds=150,
        )
        scalar_b = run_uniform(
            protocol, 9, np.random.default_rng(seed), channel=nulled,
            max_rounds=150,
        )
        assert scalar_a.solved == scalar_b.solved
        assert scalar_a.rounds == scalar_b.rounds

        ks = np.full(25, 9, dtype=np.int64)
        batch_a = run_uniform_batch(
            protocol, ks, np.random.default_rng(seed), channel=faithful,
            max_rounds=150,
        )
        batch_b = run_uniform_batch(
            protocol, ks, np.random.default_rng(seed), channel=nulled,
            max_rounds=150,
        )
        assert (batch_a.solved == batch_b.solved).all()
        assert (batch_a.rounds == batch_b.rounds).all()


class TestModelAlgebra:
    @given(any_model)
    def test_serialization_round_trips(self, model):
        assert channel_model_from_dict(model.to_dict()) == model

    @given(any_model)
    def test_label_names_the_model(self, model):
        assert model.label().startswith(model.name)

    @given(any_model)
    def test_capability_flags_are_consistent(self, model):
        # Every registry model now builds a batch state (the rejoin-delay
        # crash grew a per-trial ring buffer); the finer capability flags
        # must respect the lattice the routing layers assume.
        assert model.batchable
        assert model.batch_state(4) is not None
        if model.player_batchable:
            assert model.batchable
        if model.shrinks_population:
            # Shrinking models express crashes as per-trial active-count
            # bands; only the stacked uniform engines understand those.
            assert isinstance(model, CrashModel)
            assert not model.player_batchable
        if isinstance(model, AdaptiveAdversary):
            # Adaptive state partitions cleanly per trial, but fusing
            # would blur which spec drove which jam - kept unfusable.
            assert not model.fusable
        else:
            assert model.fusable

    @given(
        budgeted_models,
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=30),
    )
    def test_jammers_only_force_collisions(self, model, trials, rounds):
        """A jammer may replace feedback with a collision, never with
        anything else: non-collision deliveries are the faithful codes."""
        state = model.batch_state(trials)
        rng = np.random.default_rng(7)
        for round_index in range(1, rounds + 1):
            codes = rng.integers(0, 3, size=trials)
            before = codes.copy()
            after = state.perturb(round_index, codes, None)
            unchanged = after == before
            assert ((after == FB_COLLISION) | unchanged).all()
