"""Property-based tests (hypothesis) for the lifecycle policies.

The invariants the retry orbit leans on:

* backoff delay schedules are monotone non-decreasing in the retry
  number and settle exactly at the cap;
* jitter only ever adds, and never more than the configured bound;
* retry budgets are never exceeded - by the policy predicate on any
  retry count, and by the driver end-to-end (no request records more
  retries than the budget permits);
* Weyl-derived jitter uniforms stay in [0, 1) for any offset.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import without_collision_detection
from repro.opensys import ExponentialBackoffPolicy, ImmediateRetryPolicy, run_open
from repro.opensys.arrivals import PoissonArrivals
from repro.opensys.policies import weyl_uniforms
from repro.protocols.decay import DecayProtocol

backoff_params = st.builds(
    dict,
    base=st.integers(1, 64),
    extra=st.integers(0, 512),  # cap = base + extra, so cap >= base
    jitter=st.integers(0, 32),
    budget=st.one_of(st.none(), st.integers(0, 20)),
)


def make_backoff(params) -> ExponentialBackoffPolicy:
    return ExponentialBackoffPolicy(
        base=params["base"],
        cap=params["base"] + params["extra"],
        jitter=params["jitter"],
        budget=params["budget"],
    )


@given(params=backoff_params, upto=st.integers(1, 64))
@settings(max_examples=150, deadline=None)
def test_backoff_schedule_is_monotone_up_to_the_cap(params, upto):
    policy = make_backoff(params)
    retries = np.arange(1, upto + 1, dtype=np.int64)
    zero_jitter = np.zeros(retries.size) if policy.needs_draws else None
    delays = policy.delays(retries, zero_jitter)
    assert (np.diff(delays) >= 0).all()
    assert delays[0] == policy.base
    assert (delays <= policy.cap).all()
    # The schedule reaches the cap and stays there.
    assert delays[-1] == policy.cap or upto < 64


@given(
    params=backoff_params,
    retries=st.lists(st.integers(1, 100), min_size=1, max_size=50),
    jitter_u=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
)
@settings(max_examples=150, deadline=None)
def test_jitter_only_adds_and_stays_within_bounds(params, retries, jitter_u):
    policy = make_backoff(params)
    retries = np.asarray(retries, dtype=np.int64)
    uniforms = weyl_uniforms(jitter_u, np.arange(retries.size, dtype=np.int64))
    assert ((uniforms >= 0.0) & (uniforms < 1.0)).all()
    base_delays = policy.delays(
        retries, np.zeros(retries.size) if policy.needs_draws else None
    )
    jittered = policy.delays(
        retries, uniforms if policy.needs_draws else None
    )
    assert (jittered >= base_delays).all()
    assert (jittered <= base_delays + policy.jitter).all()
    assert (jittered >= 1).all()


@given(
    budget=st.integers(0, 15),
    counts=st.lists(st.integers(0, 40), min_size=1, max_size=30),
)
@settings(max_examples=150, deadline=None)
def test_budget_predicate_is_a_hard_wall(budget, counts):
    for policy in (
        ImmediateRetryPolicy(budget=budget),
        ExponentialBackoffPolicy(budget=budget),
    ):
        tries = np.asarray(counts, dtype=np.int64)
        allowed = policy.allows(tries)
        np.testing.assert_array_equal(allowed, tries < budget)


@given(budget=st.integers(0, 4), seed=st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_driver_never_exceeds_the_retry_budget(budget, seed):
    """End-to-end: retried <= budget * (requests that ever failed).

    Every request fails at most ``budget`` times into the orbit and then
    dies abandoned (or never fails again); with deaths + survivors
    bounded by arrivals, total retries can never exceed
    ``budget * arrivals``.
    """
    store = run_open(
        DecayProtocol(32),
        PoissonArrivals(0.7),
        channel=without_collision_detection(),
        trials=3,
        rounds=120,
        warmup=0,
        capacity=6,
        timeout=8,
        retry=ImmediateRetryPolicy(budget=budget),
        seed=seed,
    ).store
    assert store.retried <= budget * store.arrivals
    if budget == 0:
        assert store.retried == 0 and store.abandoned == 0
    # Conservation always holds.
    assert store.arrivals == (
        store.completed
        + store.dropped
        + store.timed_out
        + store.abandoned
        + store.in_flight
        + store.in_orbit
    )
