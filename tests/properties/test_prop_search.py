"""Property-based tests coupling the search protocols to the exact solver.

The exact DP (:mod:`repro.analysis.exact_search`) and the stateful session
(:mod:`repro.protocols.searching`) implement the same automaton twice; the
properties here pin them together over randomized protocol shapes, plus
structural invariants of the search itself.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.exact_search import phased_search_expected_rounds
from repro.channel.channel import with_collision_detection
from repro.channel.simulator import run_uniform
from repro.core.feedback import Observation
from repro.infotheory.condense import range_of_size
from repro.protocols.searching import PhasedSearchProtocol


def phase_strategies():
    """Random valid phase structures over ranges 1..10."""
    return st.lists(
        st.lists(
            st.integers(min_value=1, max_value=10), min_size=0, max_size=6
        ).map(lambda members: sorted(set(members))),
        min_size=1,
        max_size=3,
    ).filter(lambda phases: any(phases))


class TestExactSolverAgainstSimulation:
    @given(
        phase_strategies(),
        st.integers(min_value=2, max_value=600),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_exact_mean_within_monte_carlo_interval(self, phases, k, seed):
        protocol = PhasedSearchProtocol(phases, repetitions=1, restart=True)
        exact = phased_search_expected_rounds(protocol, k)
        if not np.isfinite(exact.expected_rounds) or exact.expected_rounds > 200:
            # Degenerate search spaces (true range unreachable) diverge;
            # the simulation cannot confirm an infinite expectation.
            return
        rng = np.random.default_rng(seed)
        channel = with_collision_detection()
        rounds = [
            run_uniform(
                protocol, k, rng, channel=channel, max_rounds=100_000
            ).rounds
            for _ in range(400)
        ]
        mean = float(np.mean(rounds))
        sem = float(np.std(rounds) / np.sqrt(len(rounds)))
        assert abs(mean - exact.expected_rounds) <= max(5 * sem, 0.35)

    @given(
        st.integers(min_value=2, max_value=1000),
        st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=30, deadline=None)
    def test_full_board_search_is_finite(self, k, reps_half):
        repetitions = 2 * reps_half - 1
        protocol = PhasedSearchProtocol(
            [list(range(1, 11))], repetitions=repetitions, restart=True
        )
        if k > 2**10:
            return
        exact = phased_search_expected_rounds(protocol, k)
        assert np.isfinite(exact.expected_rounds)
        assert exact.expected_rounds >= 1.0
        assert 0.0 < exact.success_probability_per_pass <= 1.0


class TestSearchInvariants:
    @given(
        st.integers(min_value=2, max_value=900),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_probes_stay_within_board(self, k, seed):
        """Every probability the search emits belongs to some range."""
        protocol = PhasedSearchProtocol(
            [list(range(1, 11))], repetitions=3, restart=True
        )
        session = protocol.session()
        rng = np.random.default_rng(seed)
        valid = {2.0**-i for i in range(1, 11)}
        for _ in range(30):
            probability = session.next_probability()
            assert probability in valid
            outcome = rng.random()
            if outcome < 0.5:
                session.observe(Observation.SILENCE)
            else:
                session.observe(Observation.COLLISION)

    @given(st.integers(min_value=2, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_noiseless_comparisons_would_find_the_range(self, k):
        """If every comparison answered correctly, the binary search lands
        within one range of the target - the intuition behind Willard's
        analysis, checked combinatorially."""
        board = list(range(1, 11))
        target = min(range_of_size(k), 10)
        lo, hi = 0, len(board) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            if board[mid] < target:
                lo = mid + 1  # "collision": probe too aggressive
            elif board[mid] > target:
                hi = mid - 1  # "silence": probe too timid
            else:
                break
        else:
            # Loop ended without an exact hit - the final interval
            # boundary is adjacent to the target.
            assert abs(board[max(0, min(lo, len(board) - 1))] - target) <= 1
            return
        assert board[(lo + hi) // 2] == target
