"""Property-based tests (hypothesis) for the content-addressed cache key.

The two guarantees the result store leans on:

* **stability** - serializing any valid spec to JSON and loading it back
  yields the *same* key (the key is a pure function of the spec's
  canonical serialized content, not of object identity or dict order);
* **sensitivity** - changing any single field (seed, trials, a workload
  or protocol parameter, the channel model, an open spec's retry or
  admission policy) yields a *different* key, so a cache hit can never
  serve a result computed for different inputs.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import OpenScenarioSpec, ScenarioSpec, spec_key

UNIFORM_IDS = ["decay", "backoff", "willard", "fixed-probability"]

channels = st.one_of(
    st.sampled_from(["cd", "nocd"]),
    st.fixed_dictionaries(
        {
            "collision_detection": st.booleans(),
            "model": st.fixed_dictionaries(
                {
                    "name": st.just("jam-oblivious"),
                    "params": st.fixed_dictionaries(
                        {"budget": st.integers(min_value=0, max_value=50)}
                    ),
                }
            ),
        }
    ),
)

closed_specs = st.builds(
    lambda pid, k, channel, n_exp, trials, max_rounds, seed: (
        ScenarioSpec.from_dict(
            {
                "protocol": {"id": pid, "params": {}},
                "workload": {"kind": "fixed", "params": {"k": k}},
                "channel": channel,
                "n": 2**n_exp,
                "trials": trials,
                "max_rounds": max_rounds,
                "seed": seed,
            }
        )
    ),
    pid=st.sampled_from(UNIFORM_IDS),
    k=st.integers(min_value=1, max_value=64),
    channel=channels,
    n_exp=st.integers(min_value=7, max_value=16),
    trials=st.integers(min_value=1, max_value=10_000),
    max_rounds=st.integers(min_value=1, max_value=4096),
    seed=st.integers(min_value=0, max_value=2**63 - 1),
)

open_specs = st.builds(
    lambda pid, rate, retry, admission, trials, rounds, seed: (
        OpenScenarioSpec.from_dict(
            {
                "protocol": {"id": pid, "params": {}},
                "arrivals": {"family": "poisson", "params": {"rate": rate}},
                "channel": "cd",
                "n": 128,
                "trials": trials,
                "rounds": rounds,
                "retry": retry,
                "admission": admission,
                "seed": seed,
            }
        )
    ),
    pid=st.sampled_from(UNIFORM_IDS),
    rate=st.floats(
        min_value=0.01, max_value=2.0, allow_nan=False, allow_infinity=False
    ),
    retry=st.sampled_from(["give-up", "immediate"]),
    admission=st.sampled_from(["capacity", "shed"]),
    trials=st.integers(min_value=1, max_value=100),
    rounds=st.integers(min_value=1, max_value=1024),
    seed=st.integers(min_value=0, max_value=2**63 - 1),
)

any_spec = st.one_of(closed_specs, open_specs)


class TestKeyStability:
    @settings(max_examples=60, deadline=None)
    @given(spec=any_spec)
    def test_json_round_trip_preserves_the_key(self, spec):
        reloaded = type(spec).from_dict(json.loads(spec.to_json()))
        assert spec_key(reloaded) == spec_key(spec)

    @settings(max_examples=40, deadline=None)
    @given(spec=closed_specs)
    def test_key_ignores_dict_insertion_order(self, spec):
        shuffled = dict(reversed(list(spec.to_dict().items())))
        assert spec_key(ScenarioSpec.from_dict(shuffled)) == spec_key(spec)


class TestKeySensitivity:
    @settings(max_examples=60, deadline=None)
    @given(spec=closed_specs, delta=st.integers(min_value=1, max_value=1000))
    def test_seed_change_changes_key(self, spec, delta):
        mutated = spec.override({"seed": spec.seed + delta})
        assert spec_key(mutated) != spec_key(spec)

    @settings(max_examples=40, deadline=None)
    @given(spec=closed_specs, delta=st.integers(min_value=1, max_value=100))
    def test_workload_param_change_changes_key(self, spec, delta):
        new_k = spec.workload.params["k"] + delta
        mutated = spec.override({"workload.params.k": new_k})
        assert spec_key(mutated) != spec_key(spec)

    @settings(max_examples=40, deadline=None)
    @given(spec=closed_specs, budget=st.integers(min_value=0, max_value=50))
    def test_channel_model_change_changes_key(self, spec, budget):
        model = {"name": "jam-reactive", "params": {"budget": budget}}
        mutated = spec.override({"channel.model": model})
        assert spec_key(mutated) != spec_key(spec)

    @settings(max_examples=40, deadline=None)
    @given(spec=open_specs)
    def test_retry_and_admission_changes_change_key(self, spec):
        other_retry = "backoff" if spec.retry.kind != "backoff" else "give-up"
        other_admission = (
            "shed" if spec.admission.kind != "shed" else "capacity"
        )
        assert spec_key(spec.override({"retry.kind": other_retry})) != spec_key(
            spec
        )
        assert spec_key(
            spec.override({"admission.kind": other_admission})
        ) != spec_key(spec)

    @settings(max_examples=40, deadline=None)
    @given(spec=closed_specs, trials=st.integers(min_value=1, max_value=10_000))
    def test_distinct_trials_distinct_keys(self, spec, trials):
        mutated = spec.override({"trials": trials})
        if trials == spec.trials:
            assert spec_key(mutated) == spec_key(spec)
        else:
            assert spec_key(mutated) != spec_key(spec)

    @settings(max_examples=30, deadline=None)
    @given(closed=closed_specs, opened=open_specs)
    def test_open_and_closed_key_spaces_are_disjoint(self, closed, opened):
        assert spec_key(closed) != spec_key(opened)
