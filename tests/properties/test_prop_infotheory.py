"""Property-based tests (hypothesis) for the information-theory substrate.

These pin the invariants every reduction in the paper leans on: entropy
bounds, Gibbs' inequality, Kraft feasibility, Huffman optimality-ish
dominance, condensation mass preservation and prefix-code roundtrips.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infotheory.coding import (
    code_from_lengths,
    kraft_lengths_realizable,
    kraft_sum,
    shannon_code_lengths,
)
from repro.infotheory.condense import (
    CondensedDistribution,
    num_ranges,
    range_interval,
    range_of_size,
)
from repro.infotheory.distributions import SizeDistribution
from repro.infotheory.entropy import (
    entropy,
    kl_divergence,
    total_variation,
)
from repro.infotheory.huffman import huffman_code, huffman_code_lengths


def pmfs(min_size: int = 2, max_size: int = 12):
    """Strategy: random pmfs with strictly positive atoms."""
    return (
        st.lists(
            st.floats(min_value=1e-3, max_value=1.0),
            min_size=min_size,
            max_size=max_size,
        )
        .map(lambda weights: [w / sum(weights) for w in weights])
    )


class TestEntropyProperties:
    @given(pmfs())
    def test_entropy_bounds(self, pmf):
        h = entropy(pmf)
        assert -1e-9 <= h <= math.log2(len(pmf)) + 1e-9

    @given(pmfs())
    def test_kl_self_zero(self, pmf):
        assert kl_divergence(pmf, pmf) == 0.0

    @given(pmfs(min_size=4, max_size=8), pmfs(min_size=4, max_size=8))
    def test_gibbs_inequality(self, p, q):
        if len(p) != len(q):
            return
        assert kl_divergence(p, q) >= 0.0

    @given(pmfs(min_size=4, max_size=8), pmfs(min_size=4, max_size=8))
    def test_pinsker(self, p, q):
        if len(p) != len(q):
            return
        tv = total_variation(p, q)
        kl_nats = kl_divergence(p, q) * math.log(2)
        assert tv <= math.sqrt(kl_nats / 2.0) + 1e-9


class TestCodingProperties:
    @given(pmfs())
    def test_shannon_lengths_kraft_feasible(self, pmf):
        assert kraft_lengths_realizable(shannon_code_lengths(pmf))

    @given(pmfs())
    def test_huffman_lengths_kraft_tight(self, pmf):
        lengths = huffman_code_lengths(pmf)
        assert kraft_sum(lengths) == 1.0  # Huffman trees are full

    @given(pmfs())
    def test_huffman_sandwich(self, pmf):
        lengths = huffman_code_lengths(pmf)
        expected = sum(p * length for p, length in zip(pmf, lengths))
        h = entropy(pmf)
        assert h - 1e-9 <= expected < h + 1.0

    @given(pmfs())
    def test_huffman_dominates_shannon(self, pmf):
        huffman_lengths = huffman_code_lengths(pmf)
        shannon_lengths = shannon_code_lengths(pmf)
        huffman_expected = sum(
            p * length for p, length in zip(pmf, huffman_lengths)
        )
        shannon_expected = sum(
            p * length for p, length in zip(pmf, shannon_lengths)
        )
        assert huffman_expected <= shannon_expected + 1e-9

    @given(pmfs(), st.lists(st.integers(0, 11), min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_huffman_roundtrip(self, pmf, raw_symbols):
        code = huffman_code(pmf)
        symbols = [s % len(pmf) for s in raw_symbols]
        assert code.decode(code.encode_sequence(symbols)) == symbols

    @given(
        st.lists(st.integers(min_value=1, max_value=10), min_size=2, max_size=16)
    )
    def test_code_from_lengths_exact(self, lengths):
        if not kraft_lengths_realizable(lengths):
            return
        code = code_from_lengths(lengths)
        assert code.lengths() == lengths


class TestCondensationProperties:
    @given(st.integers(min_value=2, max_value=5000))
    def test_range_of_size_in_interval(self, k):
        i = range_of_size(k)
        low, high = range_interval(i)
        assert low <= k <= high

    @given(st.integers(min_value=2, max_value=2**20))
    def test_num_ranges_covers_n(self, n):
        count = num_ranges(n)
        assert 2**count >= n
        assert range_of_size(n) <= count

    @given(
        st.integers(min_value=4, max_value=11),
        st.lists(
            st.tuples(
                st.integers(min_value=2, max_value=2**11),
                st.floats(min_value=0.01, max_value=1.0),
            ),
            min_size=1,
            max_size=10,
        ),
    )
    @settings(max_examples=80)
    def test_condensation_preserves_mass(self, exponent, sized_weights):
        n = 2**exponent
        weights = {}
        for size, weight in sized_weights:
            if 2 <= size <= n:
                weights[size] = weights.get(size, 0.0) + weight
        if not weights:
            return
        distribution = SizeDistribution.from_weights(n, weights)
        condensed = distribution.condense()
        assert sum(condensed.q) == 1.0 or abs(sum(condensed.q) - 1.0) < 1e-9
        # Range masses equal the summed size masses.
        for i in range(1, condensed.num_ranges + 1):
            low, high = range_interval(i, n=n)
            direct = sum(
                distribution.probability(k) for k in range(low, high + 1)
            )
            assert abs(condensed.probability(i) - direct) < 1e-9

    @given(st.integers(min_value=2, max_value=2**12))
    @settings(deadline=None)  # large-n examples can exceed the default
    # 200ms under full-suite load; the property itself is deterministic
    def test_condensed_entropy_at_most_full_entropy(self, n):
        """Grouping never increases entropy: H(c(X)) <= H(X)."""
        distribution = SizeDistribution.uniform(n)
        assert (
            distribution.condensed_entropy()
            <= distribution.entropy() + 1e-9
        )

    @given(pmfs(min_size=4, max_size=4))
    def test_sorted_ranges_is_permutation(self, q):
        condensed = CondensedDistribution(n=16, q=tuple(q))
        order = condensed.sorted_ranges()
        assert sorted(order) == [1, 2, 3, 4]
        probabilities = [condensed.probability(i) for i in order]
        assert probabilities == sorted(probabilities, reverse=True)
