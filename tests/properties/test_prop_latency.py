"""Property-based tests (hypothesis) for the sojourn-latency store.

The invariants the open-system reporting leans on:

* nearest-rank percentiles are monotone in the level and always land on
  an observed sojourn;
* merge is exactly associative and commutative (bin-wise integer
  addition), and merging equals recording the concatenated samples;
* serialization round-trips exactly, and the empty store renders an
  explicit no-data state instead of fabricating statistics.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opensys import LatencyStore

sojourns = st.lists(st.integers(min_value=1, max_value=400), max_size=200)
levels = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
counter_values = st.fixed_dictionaries(
    {counter: st.integers(0, 10_000) for counter in LatencyStore.COUNTERS}
)


def store_of(samples, counters=None) -> LatencyStore:
    store = LatencyStore()
    store.record_many(samples)
    for counter, value in (counters or {}).items():
        setattr(store, counter, value)
    return store


@given(samples=sojourns.filter(bool), low=levels, high=levels)
@settings(max_examples=150, deadline=None)
def test_percentiles_are_monotone_and_observed(samples, low, high):
    if low > high:
        low, high = high, low
    store = store_of(samples)
    assert store.percentile(low) <= store.percentile(high)
    assert store.percentile(high) in set(samples)
    assert store.percentile(0.0) == min(samples)
    assert store.percentile(1.0) == max(samples)


@given(
    a=sojourns, b=sojourns, c=sojourns,
    ca=counter_values, cb=counter_values, cc=counter_values,
)
@settings(max_examples=100, deadline=None)
def test_merge_is_associative_commutative_and_exact(a, b, c, ca, cb, cc):
    sa, sb, sc = store_of(a, ca), store_of(b, cb), store_of(c, cc)
    assert sa.merge(sb) == sb.merge(sa)
    assert sa.merge(sb).merge(sc) == sa.merge(sb.merge(sc))
    combined = {
        counter: ca[counter] + cb[counter] + cc[counter]
        for counter in LatencyStore.COUNTERS
    }
    assert sa.merge(sb).merge(sc) == store_of(a + b + c, combined)


@given(samples=sojourns, counters=counter_values)
@settings(max_examples=100, deadline=None)
def test_serialization_round_trips_exactly(samples, counters):
    store = store_of(samples, counters)
    assert LatencyStore.from_dict(store.to_dict()) == store
    summary = store.summary()
    for counter in ("attempts", "retried", "abandoned", "in_orbit"):
        assert getattr(summary, counter) == counters[counter]


@given(samples=sojourns)
@settings(max_examples=100, deadline=None)
def test_summary_is_consistent_with_the_samples(samples):
    store = store_of(samples)
    summary = store.summary()
    assert summary.completed == len(samples)
    if samples:
        assert summary.maximum == max(samples)
        assert summary.mean == sum(samples) / len(samples)
        assert summary.p50 <= summary.p90 <= summary.p99 <= summary.maximum
    else:
        assert math.isnan(summary.p50) and math.isnan(summary.mean)
        assert "n/a" in summary.render()
