"""Property-based tests for protocols, advice and the lower-bound objects."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.simulator import run_players, run_uniform
from repro.channel.channel import (
    with_collision_detection,
    without_collision_detection,
)
from repro.core.advice import (
    MinIdPrefixAdvice,
    RangeBlockAdvice,
    bits_to_int,
    id_bit_width,
    range_blocks,
)
from repro.infotheory.condense import num_ranges, range_of_size
from repro.infotheory.distributions import SizeDistribution
from repro.lowerbounds.range_finding import SequenceRangeFinder
from repro.lowerbounds.rf_construction import rf_construction
from repro.lowerbounds.success_bounds import single_success_probability
from repro.lowerbounds.target_distance_coding import (
    SequenceTargetDistanceCode,
    elias_gamma_decode,
    elias_gamma_encode,
)
from repro.protocols.advice_deterministic import (
    DeterministicScanProtocol,
    DeterministicTreeDescentProtocol,
)


class TestSuccessProbabilityProperties:
    @given(
        st.integers(min_value=1, max_value=10**6),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_is_probability(self, k, p):
        value = single_success_probability(k, p)
        assert 0.0 <= value <= 1.0

    @given(st.integers(min_value=2, max_value=10**5))
    def test_lemma_2_13_interval(self, k):
        """The probe interval (1/2k, 1/k] keeps success >= 1/8 for all k."""
        for fraction in (0.5, 0.6, 0.75, 0.9, 1.0):
            p = fraction / k
            if p <= 0.5:  # Lemma 2.13's premise: p <= 1/2 needs k >= 2
                assert single_success_probability(k, p) >= 1.0 / 8.0


class TestEliasGammaProperties:
    @given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=20))
    def test_stream_roundtrip(self, values):
        stream = "".join(elias_gamma_encode(value) for value in values)
        decoded = []
        offset = 0
        while offset < len(stream):
            value, offset = elias_gamma_decode(stream, offset)
            decoded.append(value)
        assert decoded == values


class TestRFConstructionProperties:
    @given(
        st.integers(min_value=3, max_value=12),
        st.lists(
            st.floats(min_value=1e-6, max_value=1.0), min_size=1, max_size=40
        ),
    )
    @settings(max_examples=60)
    def test_all_outputs_are_ranges(self, exponent, probabilities):
        n = 2**exponent
        sequence = rf_construction(probabilities, n)
        assert len(sequence) == 2 * len(probabilities)
        count = num_ranges(n)
        assert all(1 <= value <= count for value in sequence)

    @given(st.integers(min_value=3, max_value=10))
    def test_long_enough_schedule_solves_everything(self, exponent):
        n = 2**exponent
        count = num_ranges(n)
        sequence = rf_construction([0.5] * (2 * count), n)
        finder = SequenceRangeFinder(sequence, tolerance=0)
        assert finder.solves_all(range(1, count + 1))

    @given(
        st.integers(min_value=4, max_value=10),
        st.lists(
            st.floats(min_value=1e-6, max_value=1.0), min_size=8, max_size=40
        ),
    )
    @settings(max_examples=40)
    def test_target_distance_code_roundtrip(self, exponent, probabilities):
        n = 2**exponent
        count = num_ranges(n)
        sequence = rf_construction(
            list(probabilities) + [0.5] * (2 * count), n
        )
        finder = SequenceRangeFinder(sequence, tolerance=2)
        code = SequenceTargetDistanceCode(finder)
        for target in range(1, count + 1):
            decoded, _ = code.decode(code.encode(target))
            assert decoded == target


class TestAdviceProperties:
    @given(
        st.integers(min_value=3, max_value=9),
        st.integers(min_value=0, max_value=4),
        st.sets(st.integers(min_value=0, max_value=500), min_size=1, max_size=12),
    )
    @settings(max_examples=80)
    def test_min_id_prefix_consistency(self, exponent, b, raw_ids):
        n = 2**exponent
        width = id_bit_width(n)
        if b > width:
            return
        participants = {player_id % n for player_id in raw_ids}
        advice = MinIdPrefixAdvice(b).checked_advise(participants, n)
        assert len(advice) == b
        # The minimum id always lies in the advised subtree.
        from repro.core.advice import id_to_bits

        assert id_to_bits(min(participants), width).startswith(advice)

    @given(
        st.integers(min_value=4, max_value=14),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=2, max_value=2**14),
    )
    @settings(max_examples=80)
    def test_range_block_advice_covers_true_range(self, exponent, b, k):
        n = 2**exponent
        if k > n:
            return
        advice = RangeBlockAdvice(b).checked_advise(set(range(k)), n)
        block = range_blocks(num_ranges(n), b)[bits_to_int(advice)]
        assert range_of_size(k) in block


class TestDeterministicProtocolProperties:
    @given(
        st.integers(min_value=3, max_value=7),
        st.integers(min_value=0, max_value=3),
        st.sets(st.integers(min_value=0, max_value=127), min_size=1, max_size=10),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_scan_always_solves_within_bound(self, exponent, b, raw_ids, seed):
        n = 2**exponent
        participants = frozenset(player_id % n for player_id in raw_ids)
        protocol = DeterministicScanProtocol(b)
        rng = np.random.default_rng(seed)
        result = run_players(
            protocol,
            participants,
            n,
            rng,
            channel=without_collision_detection(),
            advice_function=MinIdPrefixAdvice(b),
            max_rounds=protocol.worst_case_rounds(n),
        )
        assert result.solved
        assert result.rounds <= protocol.worst_case_rounds(n)

    @given(
        st.integers(min_value=3, max_value=7),
        st.integers(min_value=0, max_value=3),
        st.sets(st.integers(min_value=0, max_value=127), min_size=1, max_size=10),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_descent_always_solves_within_bound(
        self, exponent, b, raw_ids, seed
    ):
        n = 2**exponent
        participants = frozenset(player_id % n for player_id in raw_ids)
        protocol = DeterministicTreeDescentProtocol(b)
        rng = np.random.default_rng(seed)
        result = run_players(
            protocol,
            participants,
            n,
            rng,
            channel=with_collision_detection(),
            advice_function=MinIdPrefixAdvice(b),
            max_rounds=protocol.worst_case_rounds(n),
        )
        assert result.solved
        assert result.rounds <= protocol.worst_case_rounds(n)


class TestSimulatorProperties:
    @given(
        st.integers(min_value=1, max_value=200),
        st.floats(min_value=0.01, max_value=1.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_solved_iff_final_round_has_one_transmitter(self, k, p, seed):
        from repro.core.uniform import ProbabilitySchedule, ScheduleProtocol

        rng = np.random.default_rng(seed)
        protocol = ScheduleProtocol(ProbabilitySchedule([p]), cycle=True)
        result = run_uniform(
            protocol,
            k,
            rng,
            channel=without_collision_detection(),
            max_rounds=64,
            record_trace=True,
        )
        if result.solved:
            assert result.trace[-1].transmit_count == 1
            # No earlier round had exactly one transmitter.
            assert all(
                record.transmit_count != 1 for record in result.trace[:-1]
            )
        else:
            assert all(
                record.transmit_count != 1 for record in result.trace
            )

    @given(
        st.integers(min_value=2, max_value=300),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_size_draws_condense_consistently(self, k, seed):
        n = 2**10
        if k > n:
            return
        distribution = SizeDistribution.point(n, k)
        rng = np.random.default_rng(seed)
        drawn = distribution.sample(rng)
        assert drawn == k
        assert range_of_size(drawn) == range_of_size(k)
