"""Tests for range finding carriers (sequences and labelled trees)."""

import math

import pytest

from repro.infotheory.condense import CondensedDistribution
from repro.lowerbounds.range_finding import (
    LabeledBinaryTree,
    SequenceRangeFinder,
    default_sequence_tolerance,
    default_tree_tolerance,
)


class TestTolerances:
    def test_sequence_tolerance_formula(self):
        assert default_sequence_tolerance(2**16) == pytest.approx(4.0)
        assert default_sequence_tolerance(2**16, alpha=2.0) == pytest.approx(8.0)

    def test_tree_tolerance_formula(self):
        assert default_tree_tolerance(2**16) == pytest.approx(2.0)

    def test_clamped_at_one(self):
        assert default_sequence_tolerance(2, alpha=0.1) == 1.0
        assert default_tree_tolerance(4) == 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            default_sequence_tolerance(1)
        with pytest.raises(ValueError):
            default_sequence_tolerance(16, alpha=-1)


class TestSequenceRangeFinder:
    def test_solve_time_first_position(self):
        finder = SequenceRangeFinder([5, 1, 3, 8], tolerance=0)
        assert finder.solve_time(3) == 3
        assert finder.solve_time(5) == 1

    def test_tolerance_widens_matches(self):
        finder = SequenceRangeFinder([5, 1, 3, 8], tolerance=1)
        assert finder.solve_time(4) == 1  # |5 - 4| <= 1
        assert finder.solve_time(2) == 2

    def test_unsolved_returns_none(self):
        finder = SequenceRangeFinder([1, 2], tolerance=0)
        assert finder.solve_time(9) is None
        assert not finder.solves_all([1, 9])

    def test_expected_time_weighted(self):
        finder = SequenceRangeFinder([1, 2, 3, 4], tolerance=0)
        condensed = CondensedDistribution(n=16, q=(0.5, 0.0, 0.0, 0.5))
        # Targets 1 (t=1) and 4 (t=4) with mass 1/2 each.
        assert finder.expected_time(condensed) == pytest.approx(2.5)

    def test_expected_time_infinite_when_uncovered(self):
        finder = SequenceRangeFinder([1], tolerance=0)
        condensed = CondensedDistribution(n=16, q=(0.5, 0.0, 0.0, 0.5))
        assert finder.expected_time(condensed) == math.inf

    def test_rejects_empty_sequence(self):
        with pytest.raises(ValueError):
            SequenceRangeFinder([], tolerance=1)

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            SequenceRangeFinder([1], tolerance=-1)


class TestLabeledBinaryTree:
    def test_requires_root(self):
        with pytest.raises(ValueError, match="root"):
            LabeledBinaryTree({"0": 1})

    def test_rejects_disconnected_paths(self):
        with pytest.raises(ValueError, match="disconnected"):
            LabeledBinaryTree({"": 1, "00": 2})

    def test_rejects_malformed_paths(self):
        with pytest.raises(ValueError, match="malformed"):
            LabeledBinaryTree({"": 1, "2": 2})

    def test_complete_tree_covers_values(self):
        tree = LabeledBinaryTree.complete(2, [1, 2, 3, 4, 5, 6, 7])
        assert len(tree) == 7
        labels = {tree.label(path) for path in tree.paths()}
        assert labels == {1, 2, 3, 4, 5, 6, 7}

    def test_complete_tree_cycles_values(self):
        tree = LabeledBinaryTree.complete(2, [1, 2])
        labels = [tree.label(path) for path in tree.paths()]
        assert labels == [1, 2, 1, 2, 1, 2, 1]

    def test_solve_depth_shallowest(self):
        tree = LabeledBinaryTree({"": 9, "0": 5, "1": 3, "00": 3})
        assert tree.solve_depth(3, tolerance=0) == 1  # "1" beats "00"
        assert tree.solve_path(3, tolerance=0) == "1"

    def test_solve_ties_break_lexicographically(self):
        tree = LabeledBinaryTree({"": 9, "0": 3, "1": 3})
        assert tree.solve_path(3, tolerance=0) == "0"

    def test_solve_depth_none_when_absent(self):
        tree = LabeledBinaryTree({"": 9})
        assert tree.solve_depth(1, tolerance=0) is None

    def test_expected_depth(self):
        tree = LabeledBinaryTree({"": 1, "0": 4, "1": 2, "00": 3})
        condensed = CondensedDistribution(n=16, q=(0.25, 0.25, 0.25, 0.25))
        # depths: 1->0, 2->1, 3->2, 4->1.
        assert tree.expected_depth(condensed, tolerance=0) == pytest.approx(1.0)

    def test_expected_depth_infinite_when_uncovered(self):
        tree = LabeledBinaryTree({"": 1})
        condensed = CondensedDistribution(n=16, q=(0.5, 0.5, 0.0, 0.0))
        assert tree.expected_depth(condensed, tolerance=0) == math.inf

    def test_with_subtree_grafts(self):
        base = LabeledBinaryTree({"": 1, "0": 2, "1": 3, "00": 4})
        graft = LabeledBinaryTree({"": 7, "0": 8})
        combined = base.with_subtree("00", graft)
        assert combined.label("00") == 7
        assert combined.label("000") == 8
        assert combined.label("1") == 3

    def test_with_subtree_replaces_descendants(self):
        base = LabeledBinaryTree({"": 1, "0": 2, "00": 3, "000": 4})
        graft = LabeledBinaryTree({"": 9})
        combined = base.with_subtree("0", graft)
        assert combined.label("0") == 9
        assert "00" not in combined
        assert "000" not in combined

    def test_with_subtree_requires_parent(self):
        base = LabeledBinaryTree({"": 1})
        graft = LabeledBinaryTree({"": 9})
        with pytest.raises(ValueError, match="parent"):
            base.with_subtree("00", graft)

    def test_max_depth(self):
        tree = LabeledBinaryTree({"": 1, "0": 2, "01": 3})
        assert tree.max_depth() == 2

    def test_paths_sorted_by_depth(self):
        tree = LabeledBinaryTree({"": 1, "0": 2, "1": 3, "01": 4})
        assert tree.paths() == ["", "0", "1", "01"]
