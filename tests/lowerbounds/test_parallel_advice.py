"""Tests for the Theorem 3.6 parallel-advice reduction, executed."""

import numpy as np
import pytest

from repro.analysis.montecarlo import estimate_uniform_rounds
from repro.core.advice import bits_to_int
from repro.core.protocol import ScheduleExhausted
from repro.core.uniform import ProbabilitySchedule, ScheduleProtocol
from repro.lowerbounds.parallel_advice import parallel_advice_protocol
from repro.protocols.advice_randomized import (
    TruncatedDecayProtocol,
    block_index_for,
)

N = 2**12


def truncated_decay_for_string(advice: str) -> TruncatedDecayProtocol:
    """The protocol players would run given the advice string."""
    bits = len(advice)
    return TruncatedDecayProtocol(N, bits, bits_to_int(advice), cycle=True)


class TestParallelAdviceReduction:
    @pytest.mark.parametrize("b", [0, 1, 2])
    def test_compiled_protocol_is_advice_free_and_solves(
        self, b, rng, nocd_channel
    ):
        compiled = parallel_advice_protocol(b, truncated_decay_for_string)
        assert compiled.fan_out == 2**b
        for k in (2, 100, 3000):
            result = estimate_uniform_rounds(
                compiled, k, rng, channel=nocd_channel,
                trials=200, max_rounds=5000,
            )
            assert result.success.rate == 1.0

    def test_two_b_factor_accounting(self, rng, nocd_channel):
        """Theorem 3.6's arithmetic: compiled rounds <= 2^b x advised
        rounds (up to the round-robin alignment constant)."""
        b, k = 2, 900
        advised = estimate_uniform_rounds(
            TruncatedDecayProtocol(N, b, block_index_for(N, b, k)),
            k, rng, channel=nocd_channel, trials=2000, max_rounds=5000,
        ).rounds.mean
        compiled = estimate_uniform_rounds(
            parallel_advice_protocol(b, truncated_decay_for_string),
            k, rng, channel=nocd_channel, trials=2000, max_rounds=5000,
        ).rounds.mean
        assert compiled <= (2**b) * advised + 2**b

    def test_compiled_comparable_to_no_advice_baseline(
        self, rng, nocd_channel
    ):
        """Hedging across all blocks is within a constant of full decay -
        the reduction's other direction: the compiled protocol cannot beat
        the no-advice lower bound."""
        from repro.protocols.decay import DecayProtocol

        k = 900
        compiled = estimate_uniform_rounds(
            parallel_advice_protocol(2, truncated_decay_for_string),
            k, rng, channel=nocd_channel, trials=2000, max_rounds=5000,
        ).rounds.mean
        decay = estimate_uniform_rounds(
            DecayProtocol(N), k, rng, channel=nocd_channel,
            trials=2000, max_rounds=5000,
        ).rounds.mean
        assert compiled >= decay / 4.0

    def test_exhausted_subprotocols_skipped(self):
        def one_shot_for(advice: str) -> ScheduleProtocol:
            # The '0' protocol exhausts immediately; '1' keeps going.
            if advice == "0":
                return ScheduleProtocol(
                    ProbabilitySchedule([0.5]), cycle=False
                )
            return ScheduleProtocol(ProbabilitySchedule([0.25]), cycle=True)

        compiled = parallel_advice_protocol(1, one_shot_for)
        session = compiled.session()
        from repro.core.feedback import Observation

        seen = []
        for _ in range(4):
            seen.append(session.next_probability())
            session.observe(Observation.QUIET)
        # After the one-shot's single round, only the cycling one remains.
        assert seen == [0.5, 0.25, 0.25, 0.25]

    def test_all_exhausted_raises(self):
        def one_shot_for(advice: str) -> ScheduleProtocol:
            return ScheduleProtocol(ProbabilitySchedule([0.5]), cycle=False)

        session = parallel_advice_protocol(0, one_shot_for).session()
        from repro.core.feedback import Observation

        session.next_probability()
        session.observe(Observation.QUIET)
        with pytest.raises(ScheduleExhausted):
            session.next_probability()

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            parallel_advice_protocol(-1, truncated_decay_for_string)
