"""Tests for RF-Construction (Algorithm 1) and the CD tree construction."""

import math

import pytest

from repro.core.uniform import ProbabilitySchedule
from repro.infotheory.condense import num_ranges
from repro.infotheory.distributions import SizeDistribution
from repro.lowerbounds.range_finding import default_sequence_tolerance
from repro.lowerbounds.rf_construction import (
    guess_from_probability,
    rf_construction,
    rf_range_finder,
)
from repro.lowerbounds.tree_construction import (
    build_range_finding_tree,
    canonical_insert_depth,
    canonical_range_tree,
    relabel_with_guesses,
    unfold_probability_tree,
)
from repro.protocols.adapters import as_history_policy
from repro.protocols.decay import DecayProtocol
from repro.protocols.willard import WillardProtocol


class TestGuessFromProbability:
    def test_exact_powers(self):
        assert guess_from_probability(0.5, 2**8) == 1
        assert guess_from_probability(0.25, 2**8) == 2
        assert guess_from_probability(2.0**-8, 2**8) == 8

    def test_intermediate_rounds_up(self):
        assert guess_from_probability(0.3, 2**8) == 2  # ceil(log2(1/0.3))

    def test_clamps_low_probability(self):
        assert guess_from_probability(1e-9, 2**8) == 8
        assert guess_from_probability(0.0, 2**8) == 8

    def test_clamps_high_probability(self):
        assert guess_from_probability(1.0, 2**8) == 1

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            guess_from_probability(1.5, 2**8)


class TestRFConstruction:
    def test_interleaves_guess_and_cycle(self):
        schedule = ProbabilitySchedule([0.5, 0.25, 0.125])
        sequence = rf_construction(schedule, 2**4)
        assert sequence == [1, 1, 2, 2, 3, 3]

    def test_output_length_doubles(self):
        schedule = DecayProtocol(2**8).schedule
        assert len(rf_construction(schedule, 2**8)) == 2 * len(schedule)

    def test_cycle_covers_all_ranges_in_two_logn_slots(self):
        """Case 2 of Lemma 2.7: every range appears by position 2L."""
        n = 2**8
        count = num_ranges(n)
        schedule = ProbabilitySchedule([0.5] * (2 * count))
        sequence = rf_construction(schedule, n)
        head = sequence[: 2 * count]
        assert set(range(1, count + 1)) <= set(head)

    def test_cycle_wraps(self):
        n = 2**3
        schedule = ProbabilitySchedule([0.5] * 5)
        sequence = rf_construction(schedule, n)
        # Cycle positions (odd indices): 1, 2, 3, 1, 2.
        assert sequence[1::2] == [1, 2, 3, 1, 2]

    def test_accepts_raw_probability_list(self):
        assert rf_construction([0.5, 0.25], 2**4) == [1, 1, 2, 2]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            rf_construction([], 2**4)

    def test_lemma_2_7_consistency_decay(self):
        """E[Z] of RF(decay) is at most ~2x decay's expected rounds.

        Exact version of the experiment check, on a small board where the
        decay expectation is analytically ~ the probe position.
        """
        n = 2**8
        truth = SizeDistribution.range_uniform_subset(n, [2, 6])
        finder = rf_range_finder(
            DecayProtocol(n).schedule.cycled(32), n, alpha=2.0
        )
        expected_z = finder.expected_time(truth.condense())
        # Decay reaches range 2 at round 2 and range 6 at round 6; its
        # expected solve times are lower-bounded by those positions.
        assert expected_z <= 2.0 * (0.5 * 2 + 0.5 * 6) + 2.0

    def test_finder_tolerance_default(self):
        n = 2**16
        finder = rf_range_finder(DecayProtocol(n).schedule, n)
        assert finder.tolerance == pytest.approx(
            default_sequence_tolerance(n)
        )


class TestTreeConstruction:
    def test_canonical_insert_depth(self):
        assert canonical_insert_depth(2**16) == 4
        assert canonical_insert_depth(2**8) == 3

    def test_canonical_range_tree_contains_all_ranges(self):
        for n in (2**4, 2**8, 2**16):
            tree = canonical_range_tree(n)
            labels = {tree.label(path) for path in tree.paths()}
            assert labels == set(range(1, num_ranges(n) + 1))

    def test_canonical_range_tree_depth(self):
        tree = canonical_range_tree(2**16)
        assert tree.max_depth() == math.ceil(math.log2(16))

    def test_unfold_probability_tree_depth(self):
        policy = as_history_policy(WillardProtocol(2**8, repetitions=1))
        tree = unfold_probability_tree(policy, depth=3)
        assert set(len(path) for path in tree) == {0, 1, 2, 3}
        assert len(tree) == 15

    def test_unfold_respects_exhaustion(self):
        protocol = WillardProtocol(
            2**4, ranges=[2], restart=False, repetitions=1
        )
        tree = unfold_probability_tree(as_history_policy(protocol), depth=3)
        # One probe only: just the root is defined.
        assert list(tree) == [""]

    def test_relabel_with_guesses(self):
        tree = {"": 0.5, "0": 0.25, "1": 0.125}
        relabelled = relabel_with_guesses(tree, 2**4)
        assert relabelled == {"": 1, "0": 2, "1": 3}

    def test_built_tree_solves_every_range(self):
        """After the T* graft, every range is reachable (Case 2, L. 2.11)."""
        n = 2**8
        policy = as_history_policy(WillardProtocol(n, repetitions=1))
        tree = build_range_finding_tree(policy, n)
        for target in range(1, num_ranges(n) + 1):
            assert tree.solve_depth(target, tolerance=0) is not None

    def test_graft_depth_bound(self):
        """All ranges appear within depth graft + ceil(log L) (Lemma 2.11)."""
        n = 2**8
        policy = as_history_policy(WillardProtocol(n, repetitions=1))
        tree = build_range_finding_tree(policy, n)
        bound = canonical_insert_depth(n) + 1 + math.ceil(
            math.log2(num_ranges(n))
        )
        for target in range(1, num_ranges(n) + 1):
            assert tree.solve_depth(target, tolerance=0) <= bound

    def test_native_prefix_preserved(self):
        """Above the graft, the tree mirrors the algorithm's probabilities."""
        n = 2**8
        protocol = WillardProtocol(n, repetitions=1)
        policy = as_history_policy(protocol)
        tree = build_range_finding_tree(policy, n)
        # Root label = guess of the first probe (median range 4 of 8).
        session = protocol.session()
        first_probability = session.next_probability()
        from repro.lowerbounds.rf_construction import guess_from_probability

        assert tree.label("") == guess_from_probability(first_probability, n)

    def test_decay_policy_tree(self):
        """The construction also applies to oblivious schedules."""
        n = 2**8
        policy = as_history_policy(DecayProtocol(n))
        tree = build_range_finding_tree(policy, n, extra_depth=2)
        for target in range(1, num_ranges(n) + 1):
            assert tree.solve_depth(target, tolerance=0) is not None
