"""Tests for target-distance codes (Lemmas 2.5 / 2.9 constructions)."""

import pytest

from repro.infotheory.condense import CondensedDistribution, num_ranges
from repro.lowerbounds.range_finding import (
    LabeledBinaryTree,
    SequenceRangeFinder,
)
from repro.lowerbounds.target_distance_coding import (
    SequenceTargetDistanceCode,
    TreeTargetDistanceCode,
    elias_gamma_decode,
    elias_gamma_encode,
)
from repro.lowerbounds.tree_construction import build_range_finding_tree
from repro.protocols.adapters import as_history_policy
from repro.protocols.willard import WillardProtocol


class TestEliasGamma:
    @pytest.mark.parametrize("value", [1, 2, 3, 7, 8, 100, 12345])
    def test_roundtrip(self, value):
        bits = elias_gamma_encode(value)
        decoded, offset = elias_gamma_decode(bits)
        assert decoded == value
        assert offset == len(bits)

    def test_lengths(self):
        assert len(elias_gamma_encode(1)) == 1
        assert len(elias_gamma_encode(2)) == 3
        assert len(elias_gamma_encode(8)) == 7

    def test_prefix_free_concatenation(self):
        values = [3, 1, 100, 7, 7, 2]
        stream = "".join(elias_gamma_encode(value) for value in values)
        decoded = []
        offset = 0
        while offset < len(stream):
            value, offset = elias_gamma_decode(stream, offset)
            decoded.append(value)
        assert decoded == values

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            elias_gamma_encode(0)

    def test_truncated_raises(self):
        with pytest.raises(ValueError, match="truncated"):
            elias_gamma_decode("00")


class TestSequenceTargetDistanceCode:
    def test_roundtrip_all_targets(self):
        finder = SequenceRangeFinder([4, 1, 7, 2, 5], tolerance=1)
        code = SequenceTargetDistanceCode(finder)
        for target in range(1, 9):
            if finder.solve_time(target) is None:
                continue
            bits = code.encode(target)
            decoded, offset = code.decode(bits)
            assert decoded == target
            assert offset == len(bits)

    def test_rejects_unsolvable_target(self):
        finder = SequenceRangeFinder([1], tolerance=0)
        code = SequenceTargetDistanceCode(finder)
        with pytest.raises(ValueError, match="never solves"):
            code.encode(5)

    def test_stream_decoding(self):
        finder = SequenceRangeFinder([4, 1, 7], tolerance=1)
        code = SequenceTargetDistanceCode(finder)
        targets = [4, 1, 6, 8, 2]
        stream = "".join(code.encode(target) for target in targets)
        decoded = []
        offset = 0
        while offset < len(stream):
            value, offset = code.decode(stream, offset)
            decoded.append(value)
        assert decoded == targets

    def test_source_coding_floor(self):
        """E[len] >= H(c(X)) for any uniquely decodable code (Thm 2.2)."""
        n = 2**16
        count = num_ranges(n)
        sequence = list(range(1, count + 1)) * 2
        finder = SequenceRangeFinder(sequence, tolerance=0)
        code = SequenceTargetDistanceCode(finder)
        for q in (
            tuple([1.0 / count] * count),
            tuple([0.5, 0.5] + [0.0] * (count - 2)),
        ):
            condensed = CondensedDistribution(n=n, q=q)
            assert code.expected_length(condensed) >= condensed.entropy() - 1e-9

    def test_early_solves_are_cheap(self):
        finder = SequenceRangeFinder([3] + list(range(1, 9)), tolerance=0)
        code = SequenceTargetDistanceCode(finder)
        assert code.code_length(3) < code.code_length(8)


class TestTreeTargetDistanceCode:
    @pytest.fixture
    def tree(self) -> LabeledBinaryTree:
        policy = as_history_policy(WillardProtocol(2**8, repetitions=1))
        return build_range_finding_tree(policy, 2**8, extra_depth=2)

    def test_roundtrip_all_ranges(self, tree):
        code = TreeTargetDistanceCode(tree, tolerance=1)
        for target in range(1, 9):
            bits = code.encode(target)
            decoded, offset = code.decode(bits)
            assert decoded == target
            assert offset == len(bits)

    def test_stream_decoding(self, tree):
        code = TreeTargetDistanceCode(tree, tolerance=1)
        targets = [1, 8, 4, 4, 2]
        stream = "".join(code.encode(target) for target in targets)
        decoded = []
        offset = 0
        while offset < len(stream):
            value, offset = code.decode(stream, offset)
            decoded.append(value)
        assert decoded == targets

    def test_source_coding_floor(self, tree):
        code = TreeTargetDistanceCode(tree, tolerance=1)
        condensed = CondensedDistribution.uniform(2**8)
        assert code.expected_length(condensed) >= condensed.entropy() - 1e-9

    def test_rejects_unsolvable(self):
        tree = LabeledBinaryTree({"": 1})
        code = TreeTargetDistanceCode(tree, tolerance=0)
        with pytest.raises(ValueError, match="never solves"):
            code.encode(7)

    def test_rejects_negative_tolerance(self, tree):
        with pytest.raises(ValueError):
            TreeTargetDistanceCode(tree, tolerance=-1)

    def test_code_length_grows_with_depth(self):
        tree = LabeledBinaryTree({"": 1, "0": 2, "00": 3, "000": 4})
        code = TreeTargetDistanceCode(tree, tolerance=0)
        lengths = [code.code_length(target) for target in (1, 2, 3, 4)]
        assert lengths == sorted(lengths)
