"""Tests for success-probability lemmas, selective families and
non-interactive contention resolution."""

import math

import numpy as np
import pytest

from repro.channel.channel import (
    with_collision_detection,
    without_collision_detection,
)
from repro.core.advice import MinIdPrefixAdvice
from repro.lowerbounds.noninteractive import (
    exhaustive_minimum_weak_family_size,
    is_weakly_selective,
    scheme_from_protocol,
    theorem_3_3_bound,
    verify_scheme,
)
from repro.lowerbounds.selective_families import (
    bit_family,
    exhaustive_minimum_family_size,
    find_unselected_pair,
    is_strongly_selective,
    polynomial_family,
    random_selectivity_counterexample,
    singleton_family,
    theorem_3_2_threshold,
)
from repro.lowerbounds.success_bounds import (
    lemma_2_6_threshold,
    lemma_2_6_window,
    lemma_2_10_threshold,
    lemma_2_10_window,
    lemma_2_13_lower_bound,
    single_success_probability,
    window_violation,
)
from repro.protocols.advice_deterministic import (
    DeterministicScanProtocol,
    DeterministicTreeDescentProtocol,
)


class TestSingleSuccessProbability:
    def test_known_values(self):
        assert single_success_probability(1, 1.0) == 1.0
        assert single_success_probability(2, 0.5) == pytest.approx(0.5)
        assert single_success_probability(2, 1.0) == 0.0
        assert single_success_probability(5, 0.0) == 0.0

    def test_matches_direct_formula(self):
        for k in (2, 7, 100):
            for p in (0.01, 0.1, 0.5):
                direct = k * p * (1 - p) ** (k - 1)
                assert single_success_probability(k, p) == pytest.approx(direct)

    def test_stable_for_huge_k(self):
        value = single_success_probability(2**40, 2.0**-40)
        assert value == pytest.approx(1 / math.e, rel=1e-6)

    def test_maximised_near_one_over_k(self):
        k = 64
        peak = single_success_probability(k, 1.0 / k)
        for p in (0.5 / k, 2.0 / k, 8.0 / k):
            assert single_success_probability(k, p) <= peak


class TestLemmaWindows:
    @pytest.mark.parametrize("k", [2, 10, 1000, 100_000])
    def test_lemma_2_6_no_violations(self, k):
        n = 2**16
        window = lemma_2_6_window(k, n)
        threshold = lemma_2_6_threshold(n)
        for p in np.logspace(-9, 0, 200):
            assert (
                window_violation(
                    k, n, float(p), window=window, threshold=threshold
                )
                is None
            )

    @pytest.mark.parametrize("k", [2, 10, 1000, 100_000])
    def test_lemma_2_10_no_violations(self, k):
        n = 2**16
        window = lemma_2_10_window(k, n)
        threshold = lemma_2_10_threshold(n)
        for p in np.logspace(-9, 0, 200):
            assert (
                window_violation(
                    k, n, float(p), window=window, threshold=threshold
                )
                is None
            )

    @pytest.mark.parametrize("k", [2, 3, 10, 1000, 10**6])
    def test_lemma_2_13_floor(self, k):
        """P(success) >= 1/8 throughout the probe interval (1/2k, 1/k]."""
        for p in np.linspace(1.0 / (2 * k), 1.0 / k, 50):
            assert single_success_probability(
                k, float(p)
            ) >= lemma_2_13_lower_bound()

    def test_windows_widen_with_beta(self):
        low6, high6 = lemma_2_6_window(100, 2**16, beta=6)
        low12, high12 = lemma_2_6_window(100, 2**16, beta=12)
        assert low12 < low6 and high12 >= high6

    def test_in_window_points_never_flagged(self):
        window = lemma_2_6_window(100, 2**16)
        assert (
            window_violation(
                100,
                2**16,
                (window[0] + window[1]) / 2,
                window=window,
                threshold=lemma_2_6_threshold(2**16),
            )
            is None
        )


class TestSelectiveFamilies:
    def test_singleton_family_strongly_selective(self):
        assert is_strongly_selective(singleton_family(6), 6, 6)

    def test_bit_family_selective_for_pairs(self):
        assert is_strongly_selective(bit_family(16), 16, 2)

    def test_bit_family_size(self):
        assert len(bit_family(16)) == 8  # 2 * ceil(log2 16)

    def test_bit_family_fails_for_triples(self):
        # (n, 2)-selectivity does not extend to k = 3 in general.
        witness = find_unselected_pair(bit_family(8), 8, 3)
        assert witness is not None

    def test_polynomial_family_small_exhaustive(self):
        family = polynomial_family(16, 3)
        assert is_strongly_selective(family, 16, 3)

    def test_polynomial_family_larger_randomized(self, rng):
        family = polynomial_family(128, 4)
        assert (
            random_selectivity_counterexample(family, 128, 4, rng, trials=800)
            is None
        )

    def test_polynomial_family_size_quadratic_in_k(self):
        small = len(polynomial_family(64, 2))
        large = len(polynomial_family(64, 6))
        assert small < large

    def test_find_unselected_pair_detects_gap(self):
        # Family missing any set containing element 3 alone.
        family = [{0, 1}, {2}]
        witness = find_unselected_pair(family, 4, 2)
        assert witness is not None

    def test_exhaustive_minimum_matches_theorem_3_2(self):
        """For k = n >= sqrt(2n), the minimal strongly selective family
        has exactly n sets (singletons are optimal)."""
        for n in (2, 3, 4):
            assert n >= theorem_3_2_threshold(n)
            assert exhaustive_minimum_family_size(n, n, max_size=n) == n

    def test_exhaustive_refuses_large_n(self):
        with pytest.raises(ValueError):
            exhaustive_minimum_family_size(10, 4, max_size=3)


class TestNonInteractive:
    def test_minimum_weak_family_equals_n(self):
        """Theorem 3.3's conclusion, certified exhaustively for tiny n."""
        for n in (2, 3, 4):
            assert exhaustive_minimum_weak_family_size(n, max_size=n) == n

    def test_weak_selectivity_of_singletons(self):
        assert is_weakly_selective(singleton_family(4), 4)

    def test_weak_selectivity_counterexample(self):
        assert not is_weakly_selective([{0, 1}, {0, 2}], 3)

    def test_theorem_3_3_bound_formula(self):
        assert theorem_3_3_bound(16) == 4.0

    @pytest.mark.parametrize("b", [0, 1, 2])
    def test_scan_reduction_correct(self, b):
        """Theorem 3.4: the compiled non-interactive scheme is correct."""
        n = 8
        protocol = DeterministicScanProtocol(b)
        scheme, _ = scheme_from_protocol(
            protocol,
            MinIdPrefixAdvice(b),
            n,
            without_collision_detection(),
            max_rounds=protocol.worst_case_rounds(n),
        )
        assert verify_scheme(scheme) is None

    @pytest.mark.parametrize("b", [0, 1, 2])
    def test_descent_reduction_correct(self, b):
        """Theorem 3.5: the CD reduction replays histories correctly."""
        n = 8
        protocol = DeterministicTreeDescentProtocol(b)
        scheme, _ = scheme_from_protocol(
            protocol,
            MinIdPrefixAdvice(b),
            n,
            with_collision_detection(),
            max_rounds=protocol.worst_case_rounds(n),
        )
        assert verify_scheme(scheme) is None

    def test_scheme_transmit_set_exactly_one(self):
        n = 8
        protocol = DeterministicScanProtocol(1)
        scheme, _ = scheme_from_protocol(
            protocol,
            MinIdPrefixAdvice(1),
            n,
            without_collision_detection(),
            max_rounds=protocol.worst_case_rounds(n),
        )
        for participants in (frozenset({0}), frozenset({3, 5}), frozenset(range(8))):
            assert len(scheme.transmit_set(participants)) == 1
