"""Tests for the closed-form Table 1 / Table 2 bound calculators."""

import math

import pytest

from repro.lowerbounds.bounds import (
    log2_clamped,
    loglog,
    logloglog,
    loglogloglog,
    table1_cd_lower,
    table1_cd_upper,
    table1_nocd_lower,
    table1_nocd_upper,
    table2_det_cd_lower,
    table2_det_cd_upper,
    table2_det_nocd_lower,
    table2_det_nocd_upper,
    table2_rand_cd,
    table2_rand_nocd,
)


class TestIteratedLogs:
    def test_values_at_2_64(self):
        n = 2.0**64
        assert loglog(n) == pytest.approx(6.0)
        assert logloglog(n) == pytest.approx(math.log2(6.0))
        assert loglogloglog(n) == pytest.approx(max(1.0, math.log2(math.log2(6.0))))

    def test_clamping(self):
        assert loglog(4) == 1.0
        assert logloglog(4) == 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log2_clamped(0)


class TestTable1:
    def test_nocd_lower_matches_worst_case(self):
        """At max entropy H = log log n the bound is log n / log log n."""
        n = 2**16
        bound = table1_nocd_lower(4.0, n)
        assert bound == pytest.approx(16.0 / 4.0)

    def test_nocd_lower_monotone_in_entropy(self):
        values = [table1_nocd_lower(h, 2**16) for h in (0, 1, 2, 3, 4)]
        assert values == sorted(values)

    def test_nocd_upper_formula(self):
        assert table1_nocd_upper(2.0) == pytest.approx(16.0)
        assert table1_nocd_upper(2.0, 1.0) == pytest.approx(64.0)

    def test_nocd_upper_dominates_lower(self):
        for h in (0.5, 1.0, 2.0, 4.0):
            assert table1_nocd_upper(h) >= table1_nocd_lower(h, 2**16)

    def test_cd_lower_matches_willard_at_max_entropy(self):
        """H = log log n gives ~ (log log n)/2 - slack (Theorem 2.8)."""
        n = 2**16
        assert table1_cd_lower(4.0, n) == pytest.approx(2.0 - loglogloglog(n))

    def test_cd_lower_clamped_at_zero(self):
        assert table1_cd_lower(0.0, 2**16) == 0.0

    def test_cd_upper_formula(self):
        assert table1_cd_upper(2.0) == pytest.approx(9.0)
        assert table1_cd_upper(2.0, 1.0) == pytest.approx(16.0)

    def test_cd_upper_dominates_lower(self):
        for h in (0.5, 1.0, 2.0, 4.0):
            assert table1_cd_upper(h) >= table1_cd_lower(h, 2**16)

    def test_rejects_negative_entropy(self):
        with pytest.raises(ValueError):
            table1_nocd_upper(-1.0)
        with pytest.raises(ValueError):
            table1_cd_lower(-1.0, 2**16)


class TestTable2:
    def test_det_nocd_shapes(self):
        n = 2**12
        assert table2_det_nocd_lower(n, 0) == pytest.approx(n / 2)
        assert table2_det_nocd_upper(n, 0) == n
        # alpha = 1/2: lower ~ sqrt(n)/2.
        assert table2_det_nocd_lower(n, 6) == pytest.approx(
            n ** (1 - 0.5) / 2
        )

    def test_det_nocd_upper_dominates_lower(self):
        n = 2**12
        for b in range(0, 13):
            assert table2_det_nocd_upper(n, b) >= table2_det_nocd_lower(n, b)

    def test_det_cd_shapes(self):
        n = 2**16
        assert table2_det_cd_lower(n, 0) == 16.0
        assert table2_det_cd_upper(n, 0) == 17.0
        assert table2_det_cd_lower(n, 16) == 0.0
        assert table2_det_cd_upper(n, 16) == 1.0

    def test_rand_nocd_shape(self):
        n = 2**16
        assert table2_rand_nocd(n, 0) == 16.0
        assert table2_rand_nocd(n, 2) == 4.0
        assert table2_rand_nocd(n, 10) == 1.0  # clamped

    def test_rand_cd_shape(self):
        n = 2**16
        assert table2_rand_cd(n, 0) == 4.0
        assert table2_rand_cd(n, 2) == 2.0
        assert table2_rand_cd(n, 4) == 1.0  # clamped at O(1)

    def test_all_monotone_in_b(self):
        n = 2**12
        for formula in (
            table2_det_nocd_lower,
            table2_det_nocd_upper,
            table2_det_cd_lower,
            table2_det_cd_upper,
            table2_rand_nocd,
            table2_rand_cd,
        ):
            values = [formula(n, b) for b in range(0, 12)]
            assert values == sorted(values, reverse=True), formula.__name__

    def test_reject_bad_inputs(self):
        with pytest.raises(ValueError):
            table2_det_nocd_lower(1, 0)
        with pytest.raises(ValueError):
            table2_rand_cd(2, 0)
