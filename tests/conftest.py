"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import with_collision_detection, without_collision_detection
from repro.infotheory import SizeDistribution


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator; per-test isolation via fresh seeding."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def nocd_channel():
    return without_collision_detection()


@pytest.fixture
def cd_channel():
    return with_collision_detection()


@pytest.fixture
def small_n() -> int:
    """A small board: 2^10 ids, 10 condensed ranges."""
    return 2**10


@pytest.fixture
def point_distribution(small_n: int) -> SizeDistribution:
    """Zero-entropy workload: the network always has 100 participants."""
    return SizeDistribution.point(small_n, 100)


@pytest.fixture
def uniform_ranges_distribution(small_n: int) -> SizeDistribution:
    """Max-entropy workload over the condensed ranges."""
    return SizeDistribution.range_uniform(small_n)
