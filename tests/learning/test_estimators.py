"""Tests for the learned size predictors."""

import numpy as np
import pytest

from repro.infotheory.condense import range_of_size
from repro.infotheory.distributions import SizeDistribution
from repro.learning.estimators import (
    DecayingHistogramLearner,
    HistogramLearner,
    SlidingWindowLearner,
)


@pytest.fixture
def truth() -> SizeDistribution:
    return SizeDistribution.range_uniform_subset(2**10, [3, 7])


class TestHistogramLearner:
    def test_prior_is_uniform(self):
        learner = HistogramLearner(2**10)
        condensed = learner.predict().condense()
        assert all(
            q == pytest.approx(1.0 / condensed.num_ranges)
            for q in condensed.q
        )

    def test_observation_moves_mass(self):
        learner = HistogramLearner(2**10)
        for _ in range(50):
            learner.observe(100)  # range 7
        condensed = learner.predict().condense()
        assert condensed.probability(7) > 0.7

    def test_consistency(self, truth, rng: np.random.Generator):
        """Divergence to the truth vanishes with observations (LLN)."""
        learner = HistogramLearner(2**10)
        divergences = []
        for count in (10, 100, 1000):
            while learner.observations < count:
                learner.observe(int(truth.sample(rng)))
            divergences.append(learner.divergence_from(truth))
        assert divergences[-1] < divergences[0]
        assert divergences[-1] < 0.05

    def test_rejects_out_of_support(self):
        learner = HistogramLearner(2**10)
        with pytest.raises(ValueError):
            learner.observe(1)
        with pytest.raises(ValueError):
            learner.observe(2**10 + 1)

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ValueError):
            HistogramLearner(2**10, smoothing=0.0)

    def test_observation_counter(self):
        learner = HistogramLearner(2**10)
        learner.observe(5)
        learner.observe(9)
        assert learner.observations == 2

    def test_prediction_has_full_support(self):
        """Smoothing keeps every range positive: finite divergence always."""
        learner = HistogramLearner(2**10)
        for _ in range(500):
            learner.observe(2)
        condensed = learner.predict().condense()
        assert all(q > 0.0 for q in condensed.q)


class TestDecayingHistogramLearner:
    def test_tracks_drift(self, rng: np.random.Generator):
        n = 2**10
        learner = DecayingHistogramLearner(n, decay=0.9, smoothing=0.05)
        for _ in range(100):
            learner.observe(8)  # range 3
        for _ in range(100):
            learner.observe(500)  # range 9
        condensed = learner.predict().condense()
        assert condensed.probability(9) > 0.85
        assert condensed.probability(3) < 0.05

    def test_effective_memory(self):
        learner = DecayingHistogramLearner(2**10, decay=0.98)
        assert learner.effective_memory == pytest.approx(50.0)

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            DecayingHistogramLearner(2**10, decay=1.0)
        with pytest.raises(ValueError):
            DecayingHistogramLearner(2**10, decay=0.0)


class TestSlidingWindowLearner:
    def test_window_forgets(self):
        learner = SlidingWindowLearner(2**10, window=10, smoothing=0.1)
        for _ in range(20):
            learner.observe(8)
        for _ in range(10):
            learner.observe(500)
        condensed = learner.predict().condense()
        # The window holds only the last 10 observations (range 9).
        assert condensed.probability(9) > 0.8
        assert condensed.probability(range_of_size(8)) < 0.1

    def test_partial_window(self):
        learner = SlidingWindowLearner(2**10, window=100)
        learner.observe(8)
        condensed = learner.predict().condense()
        assert condensed.probability(3) == max(condensed.q)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            SlidingWindowLearner(2**10, window=0)
