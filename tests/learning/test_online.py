"""Tests for the online observe-predict-resolve loop."""

import numpy as np
import pytest

from repro.channel.channel import (
    with_collision_detection,
    without_collision_detection,
)
from repro.core.predictions import Prediction
from repro.infotheory.distributions import SizeDistribution
from repro.learning.estimators import HistogramLearner
from repro.learning.online import prediction_protocol_for, run_online
from repro.protocols.code_search import CodeSearchProtocol
from repro.protocols.sorted_probing import SortedProbingProtocol


class TestPredictionProtocolFor:
    def test_channel_dispatch(self):
        prediction = Prediction(SizeDistribution.uniform(2**8))
        nocd = prediction_protocol_for(prediction, without_collision_detection())
        cd = prediction_protocol_for(prediction, with_collision_detection())
        assert isinstance(nocd, SortedProbingProtocol)
        assert isinstance(cd, CodeSearchProtocol)


class TestRunOnline:
    def test_records_every_instance(self, rng: np.random.Generator):
        truth = SizeDistribution.range_uniform_subset(2**8, [2, 6])
        learner = HistogramLearner(2**8)
        report = run_online(
            lambda instance: truth,
            learner,
            without_collision_detection(),
            rng,
            instances=30,
        )
        assert len(report.records) == 30
        assert learner.observations == 30
        assert all(record.learner_rounds >= 1 for record in report.records)

    def test_divergence_trajectory_decreases(self, rng: np.random.Generator):
        truth = SizeDistribution.range_uniform_subset(2**8, [3])
        learner = HistogramLearner(2**8)
        report = run_online(
            lambda instance: truth,
            learner,
            without_collision_detection(),
            rng,
            instances=80,
        )
        assert report.final_divergence() < report.records[0].divergence_bits

    def test_cd_channel_loop(self, rng: np.random.Generator):
        truth = SizeDistribution.range_uniform_subset(2**8, [2, 7])
        learner = HistogramLearner(2**8)
        report = run_online(
            lambda instance: truth,
            learner,
            with_collision_detection(),
            rng,
            instances=20,
        )
        assert len(report.records) == 20

    def test_slices_and_aggregates(self, rng: np.random.Generator):
        truth = SizeDistribution.point(2**8, 20)
        learner = HistogramLearner(2**8)
        report = run_online(
            lambda instance: truth,
            learner,
            without_collision_detection(),
            rng,
            instances=40,
        )
        assert report.mean_rounds() > 0
        assert report.mean_rounds(first=10) >= 1.0
        assert report.mean_rounds(last=10) >= 1.0
        assert report.mean_oracle_rounds() >= 1.0
        assert report.mean_baseline_rounds() >= 1.0
        assert isinstance(report.learning_gap(10), float)

    def test_rejects_bad_instances(self, rng: np.random.Generator):
        learner = HistogramLearner(2**8)
        with pytest.raises(ValueError):
            run_online(
                lambda instance: SizeDistribution.uniform(2**8),
                learner,
                without_collision_detection(),
                rng,
                instances=0,
            )

    def test_rejects_board_mismatch(self, rng: np.random.Generator):
        learner = HistogramLearner(2**8)
        with pytest.raises(ValueError, match="board"):
            run_online(
                lambda instance: SizeDistribution.uniform(2**9),
                learner,
                without_collision_detection(),
                rng,
                instances=2,
            )
