"""Unit tests for repro.core.feedback."""

import pytest

from repro.core.feedback import (
    Feedback,
    Observation,
    feedback_for_count,
    observe,
)


class TestFeedbackForCount:
    def test_zero_is_silence(self):
        assert feedback_for_count(0) is Feedback.SILENCE

    def test_one_is_success(self):
        assert feedback_for_count(1) is Feedback.SUCCESS

    @pytest.mark.parametrize("count", [2, 3, 10, 1000])
    def test_many_is_collision(self, count):
        assert feedback_for_count(count) is Feedback.COLLISION

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            feedback_for_count(-1)


class TestObserve:
    def test_cd_passes_through(self):
        assert (
            observe(Feedback.SILENCE, collision_detection=True)
            is Observation.SILENCE
        )
        assert (
            observe(Feedback.COLLISION, collision_detection=True)
            is Observation.COLLISION
        )
        assert (
            observe(Feedback.SUCCESS, collision_detection=True)
            is Observation.SUCCESS
        )

    def test_nocd_merges_silence_and_collision(self):
        assert (
            observe(Feedback.SILENCE, collision_detection=False)
            is Observation.QUIET
        )
        assert (
            observe(Feedback.COLLISION, collision_detection=False)
            is Observation.QUIET
        )

    def test_nocd_success_visible(self):
        assert (
            observe(Feedback.SUCCESS, collision_detection=False)
            is Observation.SUCCESS
        )

    def test_collision_bits_match_paper_encoding(self):
        # Paper Section 2.1: b_i = 1 iff a collision in round i.
        assert Observation.COLLISION.collision_bit == 1
        assert Observation.SILENCE.collision_bit == 0
        assert Observation.QUIET.collision_bit == 0
