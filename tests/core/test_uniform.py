"""Unit tests for repro.core.uniform (schedules, history policies)."""

import pytest

from repro.core.feedback import Observation
from repro.core.protocol import ProtocolError, ScheduleExhausted
from repro.core.uniform import (
    HistoryPolicy,
    HistoryPolicyProtocol,
    ProbabilitySchedule,
    ScheduleProtocol,
    validate_probability,
)


class TestValidateProbability:
    def test_accepts_bounds(self):
        assert validate_probability(0.0) == 0.0
        assert validate_probability(1.0) == 1.0
        assert validate_probability(0.5) == 0.5

    @pytest.mark.parametrize("p", [-0.1, 1.1, 2.0])
    def test_rejects_out_of_range(self, p):
        with pytest.raises(ProtocolError):
            validate_probability(p)


class TestProbabilitySchedule:
    def test_basic_access(self):
        schedule = ProbabilitySchedule([0.5, 0.25], name="s")
        assert len(schedule) == 2
        assert schedule[0] == 0.5
        assert list(schedule) == [0.5, 0.25]
        assert schedule.probabilities == (0.5, 0.25)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ProbabilitySchedule([])

    def test_rejects_invalid_probability(self):
        with pytest.raises(ProtocolError):
            ProbabilitySchedule([0.5, 1.5])

    def test_cycled_exact_length(self):
        schedule = ProbabilitySchedule([0.5, 0.25])
        extended = schedule.cycled(5)
        assert len(extended) == 5
        assert list(extended) == [0.5, 0.25, 0.5, 0.25, 0.5]

    def test_cycled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ProbabilitySchedule([0.5]).cycled(0)


class TestScheduleSession:
    def test_one_shot_exhausts(self):
        protocol = ScheduleProtocol(
            ProbabilitySchedule([0.5, 0.25]), cycle=False
        )
        session = protocol.session()
        assert session.next_probability() == 0.5
        session.observe(Observation.QUIET)
        assert session.next_probability() == 0.25
        session.observe(Observation.QUIET)
        with pytest.raises(ScheduleExhausted):
            session.next_probability()

    def test_cycling_repeats(self):
        protocol = ScheduleProtocol(
            ProbabilitySchedule([0.5, 0.25]), cycle=True
        )
        session = protocol.session()
        values = []
        for _ in range(5):
            values.append(session.next_probability())
            session.observe(Observation.QUIET)
        assert values == [0.5, 0.25, 0.5, 0.25, 0.5]

    def test_sessions_independent(self):
        protocol = ScheduleProtocol(ProbabilitySchedule([0.5, 0.25]))
        first = protocol.session()
        first.next_probability()
        second = protocol.session()
        assert second.next_probability() == 0.5

    def test_observe_is_oblivious(self):
        protocol = ScheduleProtocol(ProbabilitySchedule([0.5, 0.25]))
        session = protocol.session()
        session.next_probability()
        # No-CD schedules ignore all observation kinds without error.
        session.observe(Observation.QUIET)
        session.observe(Observation.SILENCE)
        assert session.rounds_played == 1


class HalvingPolicy(HistoryPolicy):
    """Probability halves after each collision, doubles after silence."""

    name = "halving"

    def probability(self, history: str) -> float:
        self.validate_history(history)
        exponent = 1 + history.count("1") - history.count("0")
        return min(1.0, 2.0 ** -max(exponent, 0))


class TestHistoryPolicySession:
    def test_history_accumulates_collision_bits(self):
        protocol = HistoryPolicyProtocol(HalvingPolicy())
        session = protocol.session()
        session.next_probability()
        session.observe(Observation.COLLISION)
        session.next_probability()
        session.observe(Observation.SILENCE)
        assert session.history == "10"

    def test_probability_follows_policy(self):
        protocol = HistoryPolicyProtocol(HalvingPolicy())
        session = protocol.session()
        assert session.next_probability() == 0.5
        session.observe(Observation.COLLISION)
        assert session.next_probability() == 0.25

    def test_rejects_quiet_observation(self):
        protocol = HistoryPolicyProtocol(HalvingPolicy())
        session = protocol.session()
        session.next_probability()
        with pytest.raises(ProtocolError, match="collision detection"):
            session.observe(Observation.QUIET)

    def test_rejects_success_observation(self):
        protocol = HistoryPolicyProtocol(HalvingPolicy())
        session = protocol.session()
        session.next_probability()
        with pytest.raises(ProtocolError, match="success"):
            session.observe(Observation.SUCCESS)

    def test_requires_cd_flag(self):
        protocol = HistoryPolicyProtocol(HalvingPolicy())
        assert protocol.requires_collision_detection is True

    def test_malformed_history_rejected(self):
        policy = HalvingPolicy()
        with pytest.raises(ProtocolError, match="malformed"):
            policy.validate_history("0x1")
