"""Unit tests for repro.core.advice (the perfect-advice model)."""

import pytest

from repro.core.advice import (
    AdviceError,
    FullIdAdvice,
    MinIdPrefixAdvice,
    NullAdvice,
    RangeBlockAdvice,
    bits_to_int,
    id_bit_width,
    id_to_bits,
    range_blocks,
)
from repro.infotheory.condense import num_ranges, range_of_size


class TestBitHelpers:
    def test_id_bit_width(self):
        assert id_bit_width(2) == 1
        assert id_bit_width(16) == 4
        assert id_bit_width(17) == 5
        assert id_bit_width(1) == 1

    def test_id_to_bits_roundtrip(self):
        for player_id in (0, 1, 5, 15):
            assert bits_to_int(id_to_bits(player_id, 4)) == player_id

    def test_id_to_bits_fixed_width(self):
        assert id_to_bits(3, 5) == "00011"

    def test_id_to_bits_overflow(self):
        with pytest.raises(AdviceError, match="fit"):
            id_to_bits(16, 4)

    def test_bits_to_int_empty(self):
        assert bits_to_int("") == 0

    def test_bits_to_int_malformed(self):
        with pytest.raises(AdviceError):
            bits_to_int("01x")


class TestRangeBlocks:
    def test_zero_bits_single_block(self):
        blocks = range_blocks(10, 0)
        assert blocks == [list(range(1, 11))]

    def test_partition_covers_all_ranges(self):
        for bits in range(0, 5):
            blocks = range_blocks(16, bits)
            assert len(blocks) == 2**bits
            flattened = [i for block in blocks for i in block]
            assert sorted(flattened) == list(range(1, 17))

    def test_blocks_are_consecutive(self):
        for block in range_blocks(16, 2):
            assert block == list(range(block[0], block[-1] + 1))

    def test_excess_bits_gives_empty_tail_blocks(self):
        blocks = range_blocks(3, 2)
        assert [len(block) for block in blocks] == [1, 1, 1, 0]

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            range_blocks(0, 1)
        with pytest.raises(ValueError):
            range_blocks(4, -1)


class TestNullAdvice:
    def test_empty_string(self):
        advice = NullAdvice()
        assert advice.checked_advise({3, 5}, 16) == ""
        assert advice.bits == 0


class TestMinIdPrefixAdvice:
    def test_prefix_of_min_id(self):
        advice = MinIdPrefixAdvice(3)
        assert advice.checked_advise({9, 5, 12}, 16) == id_to_bits(5, 4)[:3]

    def test_zero_bits(self):
        assert MinIdPrefixAdvice(0).checked_advise({7}, 16) == ""

    def test_full_width(self):
        advice = MinIdPrefixAdvice(4)
        assert advice.checked_advise({9}, 16) == "1001"

    def test_budget_exceeds_width(self):
        with pytest.raises(AdviceError, match="exceeds"):
            MinIdPrefixAdvice(5).checked_advise({0}, 16)

    def test_min_participant_consistent_with_prefix(self):
        advice = MinIdPrefixAdvice(2)
        participants = {13, 14, 15}
        prefix = advice.checked_advise(participants, 16)
        assert id_to_bits(min(participants), 4).startswith(prefix)


class TestRangeBlockAdvice:
    def test_block_contains_true_range(self):
        n = 2**10
        for bits in (0, 1, 2, 3):
            advice = RangeBlockAdvice(bits)
            for k in (2, 9, 100, 1000):
                participants = set(range(k))
                block_index = bits_to_int(
                    advice.checked_advise(participants, n)
                )
                block = range_blocks(num_ranges(n), bits)[block_index]
                assert range_of_size(k) in block

    def test_advice_length_exact(self):
        advice = RangeBlockAdvice(3)
        assert len(advice.checked_advise(set(range(5)), 2**10)) == 3

    def test_single_participant_maps_to_first_range(self):
        advice = RangeBlockAdvice(2)
        block_index = bits_to_int(advice.checked_advise({0}, 2**10))
        block = range_blocks(10, 2)[block_index]
        assert 1 in block


class TestFullIdAdvice:
    def test_names_min_participant(self):
        advice = FullIdAdvice(16)
        assert advice.checked_advise({9, 12}, 16) == "1001"
        assert advice.bits == 4

    def test_rejects_other_n(self):
        advice = FullIdAdvice(16)
        with pytest.raises(AdviceError, match="built for"):
            advice.checked_advise({1}, 32)


class TestCheckedAdvise:
    def test_rejects_empty_participants(self):
        with pytest.raises(AdviceError, match="non-empty"):
            NullAdvice().checked_advise(set(), 16)

    def test_rejects_out_of_board_ids(self):
        with pytest.raises(AdviceError, match="outside"):
            NullAdvice().checked_advise({16}, 16)

    def test_rejects_budget_violation(self):
        class Liar(MinIdPrefixAdvice):
            def advise(self, participants, n):
                return "0" * (self.bits + 1)

        with pytest.raises(AdviceError, match="budget"):
            Liar(2).checked_advise({3}, 16)

    def test_negative_budget_rejected(self):
        with pytest.raises(AdviceError):
            MinIdPrefixAdvice(-1)
