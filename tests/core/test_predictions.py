"""Unit tests for repro.core.predictions."""

import pytest

from repro.core.predictions import BudgetReport, Prediction
from repro.infotheory.distributions import SizeDistribution
from repro.infotheory.perturb import mix_with_uniform


class TestBudgetReport:
    def test_nocd_budget_formula(self):
        report = BudgetReport(entropy_bits=2.0, divergence_bits=1.0)
        assert report.nocd_exponent == pytest.approx(6.0)
        assert report.nocd_budget_rounds == pytest.approx(64.0)

    def test_cd_budget_formula(self):
        report = BudgetReport(entropy_bits=2.0, divergence_bits=1.0)
        assert report.cd_budget_rounds == pytest.approx(16.0)

    def test_zero_entropy_budgets(self):
        report = BudgetReport(entropy_bits=0.0, divergence_bits=0.0)
        assert report.nocd_budget_rounds == 1.0
        assert report.cd_budget_rounds == 1.0


class TestPrediction:
    def test_probe_order_most_likely_first(self):
        d = SizeDistribution.from_weights(
            2**6, {2: 0.1, 10: 0.6, 40: 0.3}
        )
        prediction = Prediction(d)
        # ranges: 2 -> 1, 10 -> 4, 40 -> 6
        assert prediction.probe_order[:3] == [4, 6, 1]

    def test_probe_order_has_all_ranges(self):
        d = SizeDistribution.point(2**8, 17)
        prediction = Prediction(d)
        assert sorted(prediction.probe_order) == list(range(1, 9))

    def test_optimal_code_symbol_alignment(self):
        d = SizeDistribution.point(2**8, 17)  # range 5
        prediction = Prediction(d)
        code = prediction.optimal_code
        # Symbol 4 (range 5) must have the shortest codeword.
        assert code.length(4) == min(code.lengths())

    def test_code_length_classes_are_ranges(self):
        d = SizeDistribution.range_uniform(2**8)
        prediction = Prediction(d)
        classes = prediction.code_length_classes()
        flattened = sorted(
            range_index
            for members in classes.values()
            for range_index in members
        )
        assert flattened == list(range(1, 9))

    def test_code_length_classes_sorted_within(self):
        d = SizeDistribution.range_uniform_subset(2**8, [1, 4, 7])
        classes = Prediction(d).code_length_classes()
        for members in classes.values():
            assert members == sorted(members)

    def test_budget_against_self_matches_self_budget(self):
        d = SizeDistribution.range_uniform_subset(2**8, [2, 6])
        prediction = Prediction(d)
        against = prediction.budget_against(d)
        self_budget = prediction.self_budget()
        assert against.entropy_bits == pytest.approx(self_budget.entropy_bits)
        assert against.divergence_bits == pytest.approx(0.0, abs=1e-12)

    def test_budget_against_mismatched(self):
        truth = SizeDistribution.range_uniform_subset(2**8, [2, 6])
        predicted = mix_with_uniform(truth, 0.5)
        report = Prediction(predicted).budget_against(truth)
        assert report.divergence_bits > 0.0
        assert report.nocd_budget_rounds > 2.0 ** (
            2.0 * report.entropy_bits
        )

    def test_budget_against_rejects_different_n(self):
        prediction = Prediction(SizeDistribution.uniform(2**8))
        with pytest.raises(ValueError, match="n="):
            prediction.budget_against(SizeDistribution.uniform(2**9))

    def test_derived_values_cached(self):
        prediction = Prediction(SizeDistribution.uniform(2**8))
        assert prediction.optimal_code is prediction.optimal_code
        assert prediction.condensed is prediction.condensed

    def test_probe_order_returns_copy(self):
        prediction = Prediction(SizeDistribution.uniform(2**8))
        order = prediction.probe_order
        order.append(99)
        assert 99 not in prediction.probe_order
