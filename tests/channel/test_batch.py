"""Batch/scalar equivalence for the vectorized execution engine.

The batch engine draws the *same distribution* as the scalar reference
loop (the per-round channel state of a uniform execution is exactly
``Binomial(k, p)``; see ``channel/batch.py``), but consumes the RNG
stream in a different order, so per-trial outcomes differ for one seed.
Equivalence is therefore asserted two ways:

* **exactly**, wherever the outcome is deterministic (probability-0/1
  schedules, exhaustion and budget bookkeeping);
* **statistically**, on solved/rounds statistics of fixed-seed batches -
  both paths run with their own deterministic generator and must agree
  within tolerances sized for the trial counts used (the comparisons are
  deterministic given the seeds, so these never flake).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.montecarlo import estimate_uniform_rounds
from repro.channel import (
    AdaptiveAdversary,
    Channel,
    CrashModel,
    NoisyChannel,
    ObliviousJammer,
    ReactiveJammer,
    is_batchable,
    run_history_stacked,
    run_schedule_stacked,
    run_uniform,
    run_uniform_batch,
)
from repro.core.feedback import Observation
from repro.core.protocol import (
    BatchSchedule,
    ProtocolError,
    ScheduleExhausted,
    UniformProtocol,
    UniformSession,
)
from repro.core.uniform import (
    HistoryPolicy,
    HistoryPolicyProtocol,
    ProbabilitySchedule,
    ScheduleProtocol,
)
from repro.infotheory.distributions import SizeDistribution
from repro.protocols.decay import DecayProtocol
from repro.protocols.restart import RestartProtocol
from repro.protocols.sorted_probing import SortedProbingProtocol
from repro.protocols.willard import WillardProtocol

N = 2**10


class _HalvingPolicy(HistoryPolicy):
    """Tiny CD policy: halve the probability after every collision."""

    name = "halving"

    def probability(self, history: str) -> float:
        collisions = history.count("1")
        return 0.5 ** min(collisions + 1, 30)


class _OneShotProbeSession(UniformSession):
    def __init__(self, probabilities: tuple[float, ...]) -> None:
        self._probabilities = probabilities
        self._position = 0

    def next_probability(self) -> float:
        if self._position >= len(self._probabilities):
            raise ScheduleExhausted("probe schedule spent")
        probability = self._probabilities[self._position]
        self._position += 1
        return probability

    def observe(self, observation: Observation) -> None:
        assert observation in (Observation.SILENCE, Observation.COLLISION)


class _OneShotProbeProtocol(UniformProtocol):
    """Deterministic-outcome CD one-shot: fixed 0/1 probabilities.

    With probabilities in {0, 1} every trial's trajectory is
    deterministic, so the scalar loop and the history engine must agree
    *exactly* - the pin for ScheduleExhausted / give-up bookkeeping.
    Deliberately publishes no batch schedule, keeping it on the history
    engine even though it ignores feedback.
    """

    name = "one-shot-probe"
    requires_collision_detection = True

    def __init__(self, probabilities: tuple[float, ...]) -> None:
        self.probabilities = tuple(probabilities)

    def session(self) -> _OneShotProbeSession:
        return _OneShotProbeSession(self.probabilities)


def _scalar_stats(protocol_factory, ks, channel, max_rounds, seed):
    rng = np.random.default_rng(seed)
    solved, rounds = [], []
    for k in ks:
        result = run_uniform(
            protocol_factory(), int(k), rng, channel=channel,
            max_rounds=max_rounds,
        )
        solved.append(result.solved)
        rounds.append(result.rounds)
    return np.asarray(solved), np.asarray(rounds)


def _sizes(rng, trials):
    distribution = SizeDistribution.range_uniform_subset(N, [2, 5, 8])
    return np.asarray(distribution.sample_many(rng, trials), dtype=np.int64)


class TestBatchScalarEquivalence:
    """Fixed-seed statistical agreement across the protocol families."""

    @pytest.mark.parametrize(
        "label,make_protocol,cd",
        [
            ("cycling-schedule", lambda: DecayProtocol(N), False),
            (
                "one-shot-schedule",
                lambda: SortedProbingProtocol(
                    SizeDistribution.range_uniform_subset(N, [2, 5, 8]),
                    one_shot=True,
                ),
                False,
            ),
            (
                "history-policy",
                lambda: HistoryPolicyProtocol(_HalvingPolicy()),
                True,
            ),
            ("phased-search", lambda: WillardProtocol(N), True),
        ],
    )
    def test_statistics_agree(
        self, label, make_protocol, cd, nocd_channel, cd_channel
    ):
        channel = cd_channel if cd else nocd_channel
        trials, max_rounds = 3000, 400
        ks = _sizes(np.random.default_rng(7), trials)
        protocol = make_protocol()
        assert is_batchable(protocol)

        scalar_solved, scalar_rounds = _scalar_stats(
            make_protocol, ks, channel, max_rounds, seed=11
        )
        batch = run_uniform_batch(
            protocol, ks, np.random.default_rng(13), channel=channel,
            max_rounds=max_rounds,
        )

        scalar_rate = scalar_solved.mean()
        batch_rate = batch.solved.mean()
        assert batch_rate == pytest.approx(scalar_rate, abs=0.05), label

        if scalar_solved.any() and batch.num_solved:
            scalar_mean = scalar_rounds[scalar_solved].mean()
            batch_mean = batch.solved_rounds().mean()
            assert batch_mean == pytest.approx(
                scalar_mean, rel=0.1, abs=0.5
            ), label

    def test_unsolved_bookkeeping_matches_scalar_convention(
        self, nocd_channel
    ):
        """Budget-censored trials report rounds == max_rounds, like the
        scalar engine."""
        protocol = ScheduleProtocol(ProbabilitySchedule([1e-12]), cycle=True)
        batch = run_uniform_batch(
            protocol, [5, 9, 17], np.random.default_rng(0),
            channel=nocd_channel, max_rounds=25,
        )
        assert not batch.solved.any()
        assert (batch.rounds == 25).all()


class TestDeterministicExactness:
    """Where outcomes are deterministic, batch and scalar match exactly."""

    def test_certain_success_first_round(self, rng, nocd_channel):
        protocol = ScheduleProtocol(ProbabilitySchedule([1.0]), cycle=True)
        ks = np.ones(40, dtype=np.int64)  # k=1, p=1 -> success in round 1
        batch = run_uniform_batch(
            protocol, ks, rng, channel=nocd_channel, max_rounds=10
        )
        assert batch.solved.all()
        assert (batch.rounds == 1).all()
        scalar = run_uniform(
            protocol, 1, rng, channel=nocd_channel, max_rounds=10
        )
        assert scalar.solved and scalar.rounds == 1

    def test_schedule_exhaustion_rounds(self, rng, nocd_channel):
        """One-shot exhaustion censors at the schedule length, both paths."""
        schedule = ProbabilitySchedule([0.0, 0.0, 0.0])
        protocol = ScheduleProtocol(schedule, cycle=False)
        batch = run_uniform_batch(
            protocol, [4, 6], rng, channel=nocd_channel, max_rounds=50
        )
        assert not batch.solved.any()
        assert (batch.rounds == 3).all()
        scalar = run_uniform(
            protocol, 4, rng, channel=nocd_channel, max_rounds=50
        )
        assert not scalar.solved and scalar.rounds == 3

    def test_budget_shorter_than_schedule(self, rng, nocd_channel):
        protocol = ScheduleProtocol(
            ProbabilitySchedule([0.0] * 10), cycle=False
        )
        batch = run_uniform_batch(
            protocol, [4], rng, channel=nocd_channel, max_rounds=4
        )
        assert batch.rounds[0] == 4

    def test_history_engine_exhaustion(self, rng, cd_channel):
        """One-shot phased search exhausts cleanly on the history engine
        with the scalar rounds-played convention."""
        protocol = WillardProtocol(N, restart=False, repetitions=1)
        ks = np.full(64, 700, dtype=np.int64)  # large k: collisions abound
        batch = run_uniform_batch(
            protocol, ks, rng, channel=cd_channel, max_rounds=500
        )
        per_pass = protocol.worst_case_rounds_per_pass()
        unsolved = ~batch.solved
        assert (batch.rounds[unsolved] <= per_pass).all()
        assert (batch.rounds[batch.solved] >= 1).all()


class TestStackedScheduleEngine:
    """run_schedule_stacked: per-point bit-identity with solo batches."""

    def _protocols(self):
        return [
            DecayProtocol(N),
            SortedProbingProtocol(
                SizeDistribution.range_uniform_subset(N, [2, 5, 8]),
                one_shot=True,
            ),
            DecayProtocol(N, cycle=False),
        ]

    def test_stacked_points_match_solo_runs_exactly(self, nocd_channel):
        """Each point of a stacked run consumes its own generator exactly
        as a solo run would, so results agree bit for bit - including
        across mixed cycling/one-shot horizons."""
        protocols = self._protocols()
        ks_list = [
            _sizes(np.random.default_rng(40 + i), 150) for i in range(3)
        ]
        stacked = run_schedule_stacked(
            [p.batch_schedule() for p in protocols],
            ks_list,
            [np.random.default_rng(70 + i) for i in range(3)],
            max_rounds=300,
        )
        for i, (protocol, ks) in enumerate(zip(protocols, ks_list)):
            solo = run_uniform_batch(
                protocol, ks, np.random.default_rng(70 + i),
                channel=nocd_channel, max_rounds=300,
            )
            assert (stacked[i].solved == solo.solved).all(), i
            assert (stacked[i].rounds == solo.rounds).all(), i
            assert (stacked[i].ks == solo.ks).all(), i

    def test_point_stops_consuming_randomness_when_done(self):
        """A point whose trials all retired must never be drawn for again
        (the stacked counterpart of the solo engine's early break).
        Draws come in 16-round blocks per live trial, so a point solved
        in round 1 consumes exactly one block row per trial and a point
        alive to the budget consumes one uniform per trial-round."""

        class _CountingRng:
            def __init__(self) -> None:
                self.requested = 0
                self._rng = np.random.default_rng(0)

            def random(self, size=None, out=None):
                shape = out.shape if out is not None else size
                self.requested += int(np.prod(shape))
                return self._rng.random(size, out=out)

        instant = BatchSchedule((1.0,), True)  # k=1, p=1: solved round 1
        never = BatchSchedule((1e-9,), True)
        counters = [_CountingRng(), _CountingRng()]
        results = run_schedule_stacked(
            [instant, never],
            [np.ones(5, dtype=np.int64), np.full(3, 2, dtype=np.int64)],
            counters,
            max_rounds=50,
        )
        assert results[0].solved.all() and (results[0].rounds == 1).all()
        assert counters[0].requested == 5 * 16  # one block row per trial
        assert counters[1].requested == 3 * 50  # alive to the budget

    def test_stacked_validates_inputs(self):
        schedule = BatchSchedule((0.5,), True)
        with pytest.raises(ValueError, match="per point"):
            run_schedule_stacked(
                [schedule], [], [np.random.default_rng(0)], max_rounds=5
            )
        with pytest.raises(ValueError, match="at least one point"):
            run_schedule_stacked([], [], [], max_rounds=5)
        with pytest.raises(ValueError, match="budget"):
            run_schedule_stacked(
                [schedule], [np.ones(1, dtype=np.int64)],
                [np.random.default_rng(0)], max_rounds=0,
            )


class TestStackedHistoryEngine:
    """run_history_stacked: per-point bit-identity with solo batches."""

    def _points(self):
        protocols = [
            WillardProtocol(N),
            WillardProtocol(N, restart=False, repetitions=1),
            HistoryPolicyProtocol(_HalvingPolicy()),
            WillardProtocol(N),  # same signature as point 0: shared trie
        ]
        ks_list = [
            _sizes(np.random.default_rng(40 + i), 120)
            for i in range(len(protocols))
        ]
        return protocols, ks_list

    def test_stacked_points_match_solo_runs_exactly(self, cd_channel):
        """Each point of a stacked run consumes its own generator exactly
        as a solo run would, so results agree bit for bit - including
        one-shot give-ups mid-stack and trie sharing between the two
        identical Willard points."""
        protocols, ks_list = self._points()
        stacked = run_history_stacked(
            protocols,
            ks_list,
            [np.random.default_rng(70 + i) for i in range(len(protocols))],
            channel=cd_channel,
            max_rounds=300,
        )
        for i, (protocol, ks) in enumerate(zip(protocols, ks_list)):
            solo = run_uniform_batch(
                protocol, ks, np.random.default_rng(70 + i),
                channel=cd_channel, max_rounds=300,
            )
            assert (stacked[i].solved == solo.solved).all(), i
            assert (stacked[i].rounds == solo.rounds).all(), i
            assert (stacked[i].ks == solo.ks).all(), i

    def test_results_independent_of_trie_warmth(self, cd_channel):
        """The shared history trie is a pure memo: a cold arena and a
        warm one produce bit-identical results."""
        import repro.channel.batch as batch_module

        protocol = WillardProtocol(N)
        ks = _sizes(np.random.default_rng(3), 200)

        def run():
            return run_uniform_batch(
                protocol, ks, np.random.default_rng(9),
                channel=cd_channel, max_rounds=200,
            )

        batch_module._reset_shared_arena()
        cold = run()
        warm = run()
        assert (cold.solved == warm.solved).all()
        assert (cold.rounds == warm.rounds).all()

    def test_point_stops_consuming_randomness_when_done(self, cd_channel):
        """History points pre-draw uniforms in 16-round blocks and stop
        drawing once all their trials retired - the same stream contract
        as the schedule engine."""

        class _CountingRng:
            def __init__(self) -> None:
                self.requested = 0
                self._rng = np.random.default_rng(0)

            def random(self, size=None, out=None):
                shape = out.shape if out is not None else size
                self.requested += int(np.prod(shape))
                return self._rng.random(size, out=out)

        class _InstantPolicy(HistoryPolicy):
            name = "instant"

            def probability(self, history: str) -> float:
                return 1.0

        class _MutePolicy(HistoryPolicy):
            name = "mute"

            def probability(self, history: str) -> float:
                return 0.0  # certain silence: alive to the budget

        instant = HistoryPolicyProtocol(_InstantPolicy())  # k=1: round 1
        never = HistoryPolicyProtocol(_MutePolicy())
        counters = [_CountingRng(), _CountingRng()]
        results = run_history_stacked(
            [instant, never],
            [np.ones(5, dtype=np.int64), np.full(3, 500, dtype=np.int64)],
            counters,
            channel=cd_channel,
            max_rounds=50,
        )
        assert results[0].solved.all() and (results[0].rounds == 1).all()
        assert counters[0].requested == 5 * 16  # one block row per trial
        # Certain silence survives to the budget: one uniform per
        # trial-round, block boundaries clipped to the budget.
        assert not results[1].solved.any()
        assert counters[1].requested == 3 * 50

    def test_exhausted_trials_do_not_draw(self, cd_channel):
        """A trial retiring via ScheduleExhausted consumes no uniform in
        its give-up round, exactly like the scalar loop (the exception
        fires before the round's binomial there)."""

        class _CountingRng:
            def __init__(self) -> None:
                self.requested = 0
                self._rng = np.random.default_rng(0)

            def random(self, size=None, out=None):
                shape = out.shape if out is not None else size
                self.requested += int(np.prod(shape))
                return self._rng.random(size, out=out)

        protocol = _OneShotProbeProtocol((0.0, 0.0))
        counter = _CountingRng()
        result = run_history_stacked(
            [protocol], [np.full(4, 7, dtype=np.int64)], [counter],
            channel=cd_channel, max_rounds=10,
        )[0]
        assert (result.rounds == 2).all()
        # One 10-wide block row per trial at round 1; the round-3 give-up
        # consumed nothing further.
        assert counter.requested == 4 * 10

    def test_stacked_validates_inputs(self, cd_channel, rng):
        protocol = WillardProtocol(N)
        with pytest.raises(ValueError, match="per point"):
            run_history_stacked(
                [protocol], [], [rng], channel=cd_channel, max_rounds=5
            )
        with pytest.raises(ValueError, match="at least one point"):
            run_history_stacked([], [], [], channel=cd_channel, max_rounds=5)
        with pytest.raises(ValueError, match="budget"):
            run_history_stacked(
                [protocol], [np.ones(1, dtype=np.int64)], [rng],
                channel=cd_channel, max_rounds=0,
            )
        randomized = RestartProtocol(lambda: DecayProtocol(N, cycle=False))
        with pytest.raises(ValueError, match="randomized sessions"):
            run_history_stacked(
                [randomized], [np.ones(1, dtype=np.int64)], [rng],
                channel=cd_channel, max_rounds=5,
            )


class TestGiveUpAgreement:
    """Scalar-vs-batch agreement on the CD give-up and rejection paths."""

    def test_exhaustion_bookkeeping_matches_scalar_exactly(self, cd_channel):
        """Deterministic one-shot: both paths record rounds actually
        played (= schedule length), unsolved, for every trial."""
        protocol = _OneShotProbeProtocol((0.0, 0.0, 0.0))
        batch = run_uniform_batch(
            protocol, [2, 5, 40], np.random.default_rng(1),
            channel=cd_channel, max_rounds=50,
        )
        scalar = [
            run_uniform(
                protocol, k, np.random.default_rng(1), channel=cd_channel,
                max_rounds=50,
            )
            for k in (2, 5, 40)
        ]
        assert not batch.solved.any()
        assert (batch.rounds == 3).all()
        assert batch.gave_up().all()
        for result in scalar:
            assert not result.solved and result.rounds == 3

    def test_budget_truncates_before_exhaustion_on_both_paths(
        self, cd_channel
    ):
        protocol = _OneShotProbeProtocol((0.0,) * 10)
        batch = run_uniform_batch(
            protocol, [6], np.random.default_rng(1), channel=cd_channel,
            max_rounds=4,
        )
        scalar = run_uniform(
            protocol, 6, np.random.default_rng(1), channel=cd_channel,
            max_rounds=4,
        )
        assert batch.rounds[0] == scalar.rounds == 4
        assert not batch.gave_up().any()  # budget-censored, not a give-up

    def test_deterministic_success_matches_scalar_exactly(self, cd_channel):
        """p=1, k=1 solves in round 1 on both paths; p=1, k>=2 collides
        forever and gives up at exhaustion on both paths."""
        protocol = _OneShotProbeProtocol((1.0, 1.0))
        batch = run_uniform_batch(
            protocol, [1, 1, 3], np.random.default_rng(0),
            channel=cd_channel, max_rounds=9,
        )
        assert list(batch.solved) == [True, True, False]
        assert list(batch.rounds) == [1, 1, 2]
        solo_one = run_uniform(
            protocol, 1, np.random.default_rng(0), channel=cd_channel,
            max_rounds=9,
        )
        solo_three = run_uniform(
            protocol, 3, np.random.default_rng(0), channel=cd_channel,
            max_rounds=9,
        )
        assert solo_one.solved and solo_one.rounds == 1
        assert not solo_three.solved and solo_three.rounds == 2

    def test_k0_and_empty_rows_rejected_on_both_paths(self, cd_channel, rng):
        """The problem assumes non-empty participant sets: k = 0 rows and
        empty workloads are rejected identically by both engines."""
        protocol = WillardProtocol(N)
        with pytest.raises(ValueError, match=">= 1"):
            run_uniform(protocol, 0, rng, channel=cd_channel, max_rounds=5)
        with pytest.raises(ValueError, match=">= 1"):
            run_uniform_batch(
                protocol, [4, 0, 9], rng, channel=cd_channel, max_rounds=5
            )
        with pytest.raises(ValueError, match="non-empty"):
            run_uniform_batch(
                protocol, [], rng, channel=cd_channel, max_rounds=5
            )
        with pytest.raises(ValueError, match="non-empty"):
            run_history_stacked(
                [protocol], [np.asarray([], dtype=np.int64)], [rng],
                channel=cd_channel, max_rounds=5,
            )


class TestBatchEngineContracts:
    def test_rejects_bad_inputs(self, rng, nocd_channel):
        protocol = DecayProtocol(N)
        with pytest.raises(ValueError, match="non-empty"):
            run_uniform_batch(
                protocol, [], rng, channel=nocd_channel, max_rounds=5
            )
        with pytest.raises(ValueError, match=">= 1"):
            run_uniform_batch(
                protocol, [0, 3], rng, channel=nocd_channel, max_rounds=5
            )
        with pytest.raises(ValueError, match="budget"):
            run_uniform_batch(
                protocol, [3], rng, channel=nocd_channel, max_rounds=0
            )

    def test_cd_protocol_needs_cd_channel(self, rng, nocd_channel):
        with pytest.raises(ProtocolError):
            run_uniform_batch(
                WillardProtocol(N), [5], rng, channel=nocd_channel,
                max_rounds=5,
            )

    def test_randomized_restart_is_not_batchable(self):
        factory_restart = RestartProtocol(
            lambda: DecayProtocol(N, cycle=False)
        )
        assert not factory_restart.deterministic_sessions
        assert factory_restart.batch_schedule() is None
        assert not is_batchable(factory_restart)

    def test_restart_propagates_inner_nondeterminism(self):
        """Wrapping a randomized-session instance keeps it off the batch
        path: determinism is inherited, not reset to the class default."""
        randomized_inner = RestartProtocol(
            lambda: DecayProtocol(N, cycle=False)
        )
        outer = RestartProtocol(randomized_inner)
        assert not outer.deterministic_sessions
        assert outer.batch_schedule() is None
        assert not is_batchable(outer)

    def test_instance_restart_is_a_cycling_schedule(self, rng, nocd_channel):
        one_shot = DecayProtocol(N, cycle=False)
        restart = RestartProtocol(one_shot)
        spec = restart.batch_schedule()
        assert spec is not None and spec.cycle
        assert spec.probabilities == one_shot.schedule.probabilities
        batch = run_uniform_batch(
            restart, [10] * 200, rng, channel=nocd_channel, max_rounds=300
        )
        assert batch.solved.all()

    def test_history_signatures_identify_equal_behaviour(self):
        """Equal constructor args -> equal signature (shared trie); any
        parameter difference splits it; randomized wrappers sign nothing."""
        assert (
            WillardProtocol(N).history_signature()
            == WillardProtocol(N).history_signature()
            is not None
        )
        assert (
            WillardProtocol(N).history_signature()
            != WillardProtocol(N, repetitions=5).history_signature()
        )
        one_shot = WillardProtocol(N, restart=False)
        assert RestartProtocol(one_shot).history_signature() == (
            "restart",
            one_shot.history_signature(),
        )
        assert (
            RestartProtocol(
                lambda: WillardProtocol(N, restart=False)
            ).history_signature()
            is None
        )
        assert HistoryPolicyProtocol(_HalvingPolicy()).history_signature() is None

    def test_batch_schedule_validation(self):
        with pytest.raises(ValueError, match="at least one round"):
            BatchSchedule((), True)
        assert BatchSchedule((0.5,), True).horizon(9) == 9
        assert BatchSchedule((0.5, 0.5), False).horizon(9) == 2

    def test_result_conversions(self, rng, nocd_channel):
        batch = run_uniform_batch(
            DecayProtocol(N), [8, 8, 8], rng, channel=nocd_channel,
            max_rounds=200,
        )
        results = batch.to_execution_results()
        assert len(results) == 3
        assert [r.solved for r in results] == list(batch.solved)
        assert [r.rounds for r in results] == list(batch.rounds)
        summary = batch.rounds_summary()
        assert summary.count == batch.num_solved
        proportion = batch.success_estimate()
        assert proportion.trials == 3


class TestMonteCarloWiring:
    """estimate_uniform_rounds routes to the batch engine correctly."""

    def test_auto_uses_batch_and_agrees_with_scalar(self, nocd_channel):
        protocol = DecayProtocol(N)
        kwargs = dict(
            channel=nocd_channel, trials=2500, max_rounds=400
        )
        auto = estimate_uniform_rounds(
            protocol, 30, np.random.default_rng(5), **kwargs
        )
        scalar = estimate_uniform_rounds(
            protocol, 30, np.random.default_rng(5), batch=False, **kwargs
        )
        assert auto.success.rate == pytest.approx(scalar.success.rate, abs=0.02)
        assert auto.rounds.mean == pytest.approx(scalar.rounds.mean, rel=0.08)

    def test_factory_protocols_fall_back_to_scalar(self, rng, nocd_channel):
        estimate = estimate_uniform_rounds(
            lambda: DecayProtocol(N), 16, rng, channel=nocd_channel,
            trials=100, max_rounds=300,
        )
        assert estimate.success.rate == 1.0

    def test_batch_true_rejects_factories(self, rng, nocd_channel):
        with pytest.raises(ValueError, match="batchable"):
            estimate_uniform_rounds(
                lambda: DecayProtocol(N), 16, rng, channel=nocd_channel,
                trials=10, max_rounds=10, batch=True,
            )

    def test_callable_size_source_batches(self, rng, nocd_channel):
        estimate = estimate_uniform_rounds(
            DecayProtocol(N), lambda generator: 12, rng,
            channel=nocd_channel, trials=100, max_rounds=300, batch=True,
        )
        assert estimate.success.rate == 1.0


class TestAdversarialAgreement:
    """Scalar-vs-batch agreement under the fault-injecting channel models.

    Jammers are deterministic, so deterministic protocols must agree
    *exactly* across every engine; randomized models (noise, batchable
    crash) agree statistically and bit-identically between solo and
    stacked runs of the same generator.
    """

    def test_oblivious_jam_floor_exact_on_every_engine(self, rng):
        """k=1 with a certain-transmit schedule solves the round after the
        jam budget runs out - on the scalar loop, the solo batch and the
        stacked engine alike."""
        budget = 3
        channel = Channel(False, ObliviousJammer(budget=budget))
        protocol = ScheduleProtocol(ProbabilitySchedule([1.0]), cycle=True)

        scalar = run_uniform(
            protocol, 1, np.random.default_rng(0), channel=channel,
            max_rounds=20,
        )
        assert scalar.solved and scalar.rounds == budget + 1

        batch = run_uniform_batch(
            protocol, np.ones(8, dtype=np.int64), np.random.default_rng(0),
            channel=channel, max_rounds=20,
        )
        assert batch.solved.all() and (batch.rounds == budget + 1).all()

        stacked = run_schedule_stacked(
            [BatchSchedule((1.0,), True)],
            [np.ones(8, dtype=np.int64)],
            [np.random.default_rng(0)],
            channel=channel,
            max_rounds=20,
        )[0]
        assert stacked.solved.all() and (stacked.rounds == budget + 1).all()

    def test_reactive_jam_exact_on_history_engine(self, cd_channel, rng):
        """Deterministic 0/1 probe under the reactive jammer: round 1 is
        silent (streak builds), round 2's success is jammed, round 3's
        success is delivered - exactly, scalar and batch."""
        model = ReactiveJammer(budget=1, quiet_streak=1)
        channel = cd_channel.with_model(model)
        protocol = _OneShotProbeProtocol((0.0, 1.0, 1.0, 1.0))

        scalar = run_uniform(
            protocol, 1, np.random.default_rng(0), channel=channel,
            max_rounds=10,
        )
        assert scalar.solved and scalar.rounds == 3

        batch = run_uniform_batch(
            protocol, np.ones(6, dtype=np.int64), np.random.default_rng(0),
            channel=channel, max_rounds=10,
        )
        assert batch.solved.all() and (batch.rounds == 3).all()

    def test_certain_crash_erasure_exact_on_both_paths(self, cd_channel):
        """rejoin_after=0 with probability 1 erases every success: the
        deterministic probe exhausts unsolved, identically on the scalar
        loop and the (batchable) crash batch path."""
        channel = cd_channel.with_model(
            CrashModel(probability=1.0, rejoin_after=0)
        )
        protocol = _OneShotProbeProtocol((1.0, 1.0))

        scalar = run_uniform(
            protocol, 1, np.random.default_rng(0), channel=channel,
            max_rounds=10,
        )
        assert not scalar.solved and scalar.rounds == 2

        batch = run_uniform_batch(
            protocol, np.ones(5, dtype=np.int64), np.random.default_rng(0),
            channel=channel, max_rounds=10,
        )
        assert not batch.solved.any()
        assert (batch.rounds == 2).all()

    @pytest.mark.parametrize(
        "null_model",
        [ObliviousJammer(budget=0), NoisyChannel(), CrashModel(0.0)],
    )
    def test_null_models_bit_identical_to_faithful(
        self, null_model, nocd_channel, cd_channel
    ):
        """Zero-fault parameters reduce to the faithful channel exactly
        (same generator, same outcomes bit for bit) on both batch
        engines."""
        ks = _sizes(np.random.default_rng(3), 200)

        schedule_protocol = DecayProtocol(N)
        faithful = run_uniform_batch(
            schedule_protocol, ks, np.random.default_rng(5),
            channel=nocd_channel, max_rounds=200,
        )
        nulled = run_uniform_batch(
            schedule_protocol, ks, np.random.default_rng(5),
            channel=nocd_channel.with_model(null_model), max_rounds=200,
        )
        assert (faithful.solved == nulled.solved).all()
        assert (faithful.rounds == nulled.rounds).all()

        history_protocol = WillardProtocol(N)
        faithful = run_uniform_batch(
            history_protocol, ks, np.random.default_rng(5),
            channel=cd_channel, max_rounds=200,
        )
        nulled = run_uniform_batch(
            history_protocol, ks, np.random.default_rng(5),
            channel=cd_channel.with_model(null_model), max_rounds=200,
        )
        assert (faithful.solved == nulled.solved).all()
        assert (faithful.rounds == nulled.rounds).all()

    def test_solo_and_stacked_agree_bit_for_bit_under_noise(
        self, nocd_channel, cd_channel
    ):
        """Randomized fault models keep the stacked-stream contract: each
        point consumes its own generator exactly as a solo run would, so
        solo and stacked outcomes match bit for bit."""
        model = NoisyChannel(
            silence_to_collision=0.1, collision_to_silence=0.1,
            success_erasure=0.2,
        )
        ks = _sizes(np.random.default_rng(11), 150)

        solo = run_uniform_batch(
            DecayProtocol(N), ks, np.random.default_rng(21),
            channel=nocd_channel.with_model(model), max_rounds=300,
        )
        stacked = run_schedule_stacked(
            [DecayProtocol(N).batch_schedule()],
            [ks],
            [np.random.default_rng(21)],
            channel=nocd_channel.with_model(model),
            max_rounds=300,
        )[0]
        assert (solo.solved == stacked.solved).all()
        assert (solo.rounds == stacked.rounds).all()

        solo = run_uniform_batch(
            WillardProtocol(N), ks, np.random.default_rng(23),
            channel=cd_channel.with_model(model), max_rounds=300,
        )
        stacked = run_history_stacked(
            [WillardProtocol(N)],
            [ks],
            [np.random.default_rng(23)],
            channel=cd_channel.with_model(model),
            max_rounds=300,
        )[0]
        assert (solo.solved == stacked.solved).all()
        assert (solo.rounds == stacked.rounds).all()

    @pytest.mark.parametrize(
        "make_protocol,cd",
        [
            (lambda: DecayProtocol(N), False),
            (lambda: WillardProtocol(N), True),
        ],
    )
    def test_statistics_agree_under_noise(
        self, make_protocol, cd, nocd_channel, cd_channel
    ):
        """Fixed-seed statistical agreement between the scalar reference
        loop and the batch engine with a randomized fault model in the
        middle - the agreement pin for the noise perturbation path."""
        model = NoisyChannel(
            silence_to_collision=0.1, collision_to_silence=0.1,
            success_erasure=0.15,
        )
        channel = (cd_channel if cd else nocd_channel).with_model(model)
        trials, max_rounds = 1500, 400
        ks = _sizes(np.random.default_rng(7), trials)

        scalar_solved, scalar_rounds = _scalar_stats(
            make_protocol, ks, channel, max_rounds, seed=11
        )
        batch = run_uniform_batch(
            make_protocol(), ks, np.random.default_rng(13),
            channel=channel, max_rounds=max_rounds,
        )
        assert batch.solved.mean() == pytest.approx(
            scalar_solved.mean(), abs=0.05
        )
        assert batch.solved_rounds().mean() == pytest.approx(
            scalar_rounds[scalar_solved].mean(), rel=0.1, abs=0.5
        )

    def test_fault_draws_double_block_consumption(self, nocd_channel):
        """needs_fault_draws models pre-draw one fault uniform alongside
        every faithful block uniform - and retired points stop consuming
        both streams."""

        class _CountingRng:
            def __init__(self) -> None:
                self.requested = 0
                self._rng = np.random.default_rng(0)

            def random(self, size=None, out=None):
                shape = out.shape if out is not None else size
                self.requested += int(np.prod(shape))
                return self._rng.random(size, out=out)

        channel = nocd_channel.with_model(NoisyChannel(success_erasure=1e-12))
        instant = BatchSchedule((1.0,), True)  # k=1, p=1: solved round 1
        never = BatchSchedule((1e-9,), True)
        counters = [_CountingRng(), _CountingRng()]
        results = run_schedule_stacked(
            [instant, never],
            [np.ones(5, dtype=np.int64), np.full(3, 2, dtype=np.int64)],
            counters,
            channel=channel,
            max_rounds=50,
        )
        assert results[0].solved.all() and (results[0].rounds == 1).all()
        # One faithful block row + one fault block row per trial.
        assert counters[0].requested == 2 * 5 * 16
        # Alive to the budget: faithful + fault uniform per trial-round.
        assert counters[1].requested == 2 * 3 * 50

    def test_jammers_consume_no_extra_randomness(self, nocd_channel):
        """Deterministic jammers leave the draw stream untouched: the
        same block accounting as the faithful engine."""

        class _CountingRng:
            def __init__(self) -> None:
                self.requested = 0
                self._rng = np.random.default_rng(0)

            def random(self, size=None, out=None):
                shape = out.shape if out is not None else size
                self.requested += int(np.prod(shape))
                return self._rng.random(size, out=out)

        channel = nocd_channel.with_model(ObliviousJammer(budget=2))
        counter = _CountingRng()
        result = run_schedule_stacked(
            [BatchSchedule((1.0,), True)],
            [np.ones(5, dtype=np.int64)],
            [counter],
            channel=channel,
            max_rounds=50,
        )[0]
        # Jammed in rounds 1-2, solved in round 3: one 16-round block
        # row per trial covers it, with no parallel fault block.
        assert result.solved.all() and (result.rounds == 3).all()
        assert counter.requested == 5 * 16

    def test_rejoin_crash_batches_on_uniform_engines_only(self, rng):
        """Crash models with a non-zero rejoin delay now batch on the
        uniform engines (per-trial active-count bands); the player and
        open substrates, whose populations are not per-trial counters,
        still refuse them."""
        from repro.analysis.montecarlo import (
            select_player_engine,
            select_uniform_engine,
        )
        from repro.opensys.driver import select_open_engine
        from repro.protocols.backoff import BinaryExponentialBackoff

        model = CrashModel(probability=0.5, rejoin_after=2)
        assert model.batchable and model.shrinks_population
        assert not model.player_batchable

        assert select_uniform_engine(
            DecayProtocol(N), batch=True, model=model
        ).startswith("batch")
        with pytest.raises(ValueError, match="scalar"):
            select_player_engine(
                BinaryExponentialBackoff(), batch=True, model=model
            )
        with pytest.raises(ValueError, match="arrival process"):
            select_open_engine(DecayProtocol(N), model=model)

    def test_rejoin_crash_deterministic_erasure_exact(self, nocd_channel):
        """probability=1 with a rejoin delay: the lone station's every
        success is erased and it sits out the delay window, forever -
        deterministically, on the scalar loop, the solo batch and the
        stacked engine alike."""
        model = CrashModel(probability=1.0, rejoin_after=3)
        channel = nocd_channel.with_model(model)
        protocol = ScheduleProtocol(ProbabilitySchedule([1.0]), cycle=True)
        max_rounds = 24

        scalar = run_uniform(
            protocol, 1, np.random.default_rng(0), channel=channel,
            max_rounds=max_rounds,
        )
        assert not scalar.solved and scalar.rounds == max_rounds

        batch = run_uniform_batch(
            protocol, np.ones(6, dtype=np.int64), np.random.default_rng(0),
            channel=channel, max_rounds=max_rounds,
        )
        assert not batch.solved.any()
        assert (batch.rounds == max_rounds).all()

        stacked = run_schedule_stacked(
            [BatchSchedule((1.0,), True)],
            [np.ones(6, dtype=np.int64)],
            [np.random.default_rng(0)],
            channel=channel,
            max_rounds=max_rounds,
        )[0]
        assert not stacked.solved.any()
        assert (stacked.rounds == max_rounds).all()

    def test_rejoin_crash_statistics_agree_with_scalar_oracle(
        self, nocd_channel
    ):
        """The scalar loop stays the agreement oracle for the rejoin
        crash: the batch path draws one fault uniform per live trial per
        round (vs the scalar loop's on-success draw), so agreement is
        statistical, like the noise models."""
        model = CrashModel(probability=0.3, rejoin_after=2)
        channel = nocd_channel.with_model(model)
        trials, max_rounds = 1500, 400
        ks = _sizes(np.random.default_rng(7), trials)

        scalar_solved, scalar_rounds = _scalar_stats(
            lambda: DecayProtocol(N), ks, channel, max_rounds, seed=11
        )
        batch = run_uniform_batch(
            DecayProtocol(N), ks, np.random.default_rng(13),
            channel=channel, max_rounds=max_rounds,
        )
        assert batch.solved.mean() == pytest.approx(
            scalar_solved.mean(), abs=0.05
        )
        assert batch.solved_rounds().mean() == pytest.approx(
            scalar_rounds[scalar_solved].mean(), rel=0.1, abs=0.5
        )


class TestAdaptiveAgreement:
    """Engine agreement for the full-information adaptive adversary.

    Every registry strategy is deterministic given the feedback
    trajectory - the adversary consumes no randomness of its own - so
    deterministic protocols must agree *exactly* on the scalar loop, the
    solo batch and the stacked engines, and randomized protocols must be
    bit-identical between solo and stacked runs of one generator.
    """

    @pytest.mark.parametrize(
        "params,expected_rounds",
        [
            # Greedy erases the first `budget` successes of the certain-
            # transmit station, one per round.
            ({"strategy": "greedy"}, 4),
            # Front scheduler jams rounds 1..budget unconditionally.
            ({"strategy": "scheduler", "mode": "front"}, 4),
            # Back scheduler arms on the first faithful success - round 1
            # here - so it plays exactly like greedy on this probe.
            ({"strategy": "scheduler", "mode": "back"}, 4),
            # patience=2 never sees a 2-round quiet streak (every round
            # is a faithful success), so the streak strategy never jams.
            ({"strategy": "streak", "patience": 2}, 1),
        ],
    )
    def test_strategies_exact_on_every_engine(
        self, nocd_channel, params, expected_rounds
    ):
        model = AdaptiveAdversary(budget=3, **params)
        channel = nocd_channel.with_model(model)
        protocol = ScheduleProtocol(ProbabilitySchedule([1.0]), cycle=True)

        scalar = run_uniform(
            protocol, 1, np.random.default_rng(0), channel=channel,
            max_rounds=20,
        )
        assert scalar.solved and scalar.rounds == expected_rounds

        batch = run_uniform_batch(
            protocol, np.ones(7, dtype=np.int64), np.random.default_rng(0),
            channel=channel, max_rounds=20,
        )
        assert batch.solved.all() and (batch.rounds == expected_rounds).all()

        stacked = run_schedule_stacked(
            [BatchSchedule((1.0,), True)],
            [np.ones(7, dtype=np.int64)],
            [np.random.default_rng(0)],
            channel=channel,
            max_rounds=20,
        )[0]
        assert stacked.solved.all()
        assert (stacked.rounds == expected_rounds).all()

    def test_streak_strategy_exact_on_history_engine(self, cd_channel):
        """Deterministic 0/1 probe, patience=2: rounds 1-2 are silent
        (streak reaches 2), round 3's success is jammed, the delivered
        collision resets the streak, round 4's success lands - exactly,
        scalar and batch."""
        model = AdaptiveAdversary(budget=2, strategy="streak", patience=2)
        channel = cd_channel.with_model(model)
        protocol = _OneShotProbeProtocol((0.0, 0.0, 1.0, 1.0))

        scalar = run_uniform(
            protocol, 1, np.random.default_rng(0), channel=channel,
            max_rounds=10,
        )
        assert scalar.solved and scalar.rounds == 4

        batch = run_uniform_batch(
            protocol, np.ones(6, dtype=np.int64), np.random.default_rng(0),
            channel=channel, max_rounds=10,
        )
        assert batch.solved.all() and (batch.rounds == 4).all()

    def test_solo_and_stacked_bit_identical_under_adaptive(
        self, nocd_channel, cd_channel
    ):
        """Per-trial adversary state follows the stacked stream contract:
        solo and stacked runs of one generator match bit for bit on both
        stacked engines."""
        model = AdaptiveAdversary(budget=4, strategy="greedy")
        ks = _sizes(np.random.default_rng(11), 150)

        solo = run_uniform_batch(
            DecayProtocol(N), ks, np.random.default_rng(21),
            channel=nocd_channel.with_model(model), max_rounds=300,
        )
        stacked = run_schedule_stacked(
            [DecayProtocol(N).batch_schedule()],
            [ks],
            [np.random.default_rng(21)],
            channel=nocd_channel.with_model(model),
            max_rounds=300,
        )[0]
        assert (solo.solved == stacked.solved).all()
        assert (solo.rounds == stacked.rounds).all()

        solo = run_uniform_batch(
            WillardProtocol(N), ks, np.random.default_rng(23),
            channel=cd_channel.with_model(model), max_rounds=300,
        )
        stacked = run_history_stacked(
            [WillardProtocol(N)],
            [ks],
            [np.random.default_rng(23)],
            channel=cd_channel.with_model(model),
            max_rounds=300,
        )[0]
        assert (solo.solved == stacked.solved).all()
        assert (solo.rounds == stacked.rounds).all()

    def test_adaptive_statistics_agree_with_scalar(self, nocd_channel):
        """Fixed-seed statistical agreement between the scalar reference
        loop and the batch engine with the adaptive adversary in the
        middle: the strategies are deterministic, so the two paths
        simulate the same perturbed process."""
        model = AdaptiveAdversary(budget=6, strategy="greedy")
        channel = nocd_channel.with_model(model)
        trials, max_rounds = 1500, 400
        ks = _sizes(np.random.default_rng(7), trials)

        scalar_solved, scalar_rounds = _scalar_stats(
            lambda: DecayProtocol(N), ks, channel, max_rounds, seed=11
        )
        batch = run_uniform_batch(
            DecayProtocol(N), ks, np.random.default_rng(13),
            channel=channel, max_rounds=max_rounds,
        )
        assert batch.solved.mean() == pytest.approx(
            scalar_solved.mean(), abs=0.05
        )
        assert batch.solved_rounds().mean() == pytest.approx(
            scalar_rounds[scalar_solved].mean(), rel=0.1, abs=0.5
        )

    def test_adaptive_consumes_no_extra_randomness(self, nocd_channel):
        """The adaptive adversary is a pure function of the feedback
        trajectory: the stacked engine's draw accounting matches the
        faithful engine exactly (no parallel fault block)."""

        class _CountingRng:
            def __init__(self) -> None:
                self.requested = 0
                self._rng = np.random.default_rng(0)

            def random(self, size=None, out=None):
                shape = out.shape if out is not None else size
                self.requested += int(np.prod(shape))
                return self._rng.random(size, out=out)

        channel = nocd_channel.with_model(
            AdaptiveAdversary(budget=2, strategy="greedy")
        )
        counter = _CountingRng()
        result = run_schedule_stacked(
            [BatchSchedule((1.0,), True)],
            [np.ones(5, dtype=np.int64)],
            [counter],
            channel=channel,
            max_rounds=50,
        )[0]
        # Jammed in rounds 1-2, solved in round 3: one 16-round block
        # row per trial covers it, with no parallel fault block.
        assert result.solved.all() and (result.rounds == 3).all()
        assert counter.requested == 5 * 16
