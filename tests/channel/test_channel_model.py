"""Unit tests for repro.channel.channel and repro.channel.network."""

import numpy as np
import pytest

from repro.channel.channel import (
    Channel,
    with_collision_detection,
    without_collision_detection,
)
from repro.channel.network import (
    ClusteredAdversary,
    PrefixAdversary,
    RandomAdversary,
    SpreadAdversary,
    SuffixAdversary,
)
from repro.core.feedback import Feedback, Observation


class TestChannel:
    def test_factories(self):
        assert with_collision_detection().collision_detection
        assert not without_collision_detection().collision_detection

    def test_kind_labels(self):
        assert with_collision_detection().kind == "CD"
        assert without_collision_detection().kind == "no-CD"

    def test_resolve(self):
        channel = Channel(collision_detection=True)
        assert channel.resolve(0) is Feedback.SILENCE
        assert channel.resolve(1) is Feedback.SUCCESS
        assert channel.resolve(7) is Feedback.COLLISION

    def test_round_observation_cd(self):
        channel = with_collision_detection()
        assert channel.round_observation(0) is Observation.SILENCE
        assert channel.round_observation(5) is Observation.COLLISION

    def test_round_observation_nocd(self):
        channel = without_collision_detection()
        assert channel.round_observation(0) is Observation.QUIET
        assert channel.round_observation(5) is Observation.QUIET
        assert channel.round_observation(1) is Observation.SUCCESS


@pytest.mark.parametrize(
    "adversary",
    [
        RandomAdversary(),
        PrefixAdversary(),
        SuffixAdversary(),
        SpreadAdversary(),
        ClusteredAdversary(),
    ],
    ids=lambda adversary: adversary.name,
)
class TestAdversaries:
    @pytest.mark.parametrize("k", [1, 2, 7, 64])
    def test_selects_exactly_k(self, adversary, k, rng: np.random.Generator):
        participants = adversary.checked_select(64, k, rng)
        assert len(participants) == k

    def test_ids_in_bounds(self, adversary, rng: np.random.Generator):
        participants = adversary.checked_select(100, 17, rng)
        assert all(0 <= player_id < 100 for player_id in participants)

    def test_rejects_bad_k(self, adversary, rng: np.random.Generator):
        with pytest.raises(ValueError):
            adversary.checked_select(10, 0, rng)
        with pytest.raises(ValueError):
            adversary.checked_select(10, 11, rng)


class TestAdversaryShapes:
    def test_prefix_ids(self, rng):
        assert PrefixAdversary().checked_select(10, 3, rng) == frozenset(
            {0, 1, 2}
        )

    def test_suffix_ids(self, rng):
        assert SuffixAdversary().checked_select(10, 3, rng) == frozenset(
            {7, 8, 9}
        )

    def test_spread_covers_both_halves(self, rng):
        participants = SpreadAdversary().checked_select(64, 4, rng)
        assert any(player_id < 32 for player_id in participants)
        assert any(player_id >= 32 for player_id in participants)

    def test_spread_handles_k_near_n(self, rng):
        participants = SpreadAdversary().checked_select(10, 9, rng)
        assert len(participants) == 9

    def test_clustered_is_contiguous(self, rng):
        participants = sorted(
            ClusteredAdversary().checked_select(100, 5, rng)
        )
        assert participants == list(
            range(participants[0], participants[0] + 5)
        )

    def test_random_varies(self, rng):
        adversary = RandomAdversary()
        draws = {adversary.checked_select(1000, 5, rng) for _ in range(10)}
        assert len(draws) > 1
