"""Batch/scalar equivalence for the vectorized player engine.

The batch player engine runs the *same* per-player state machine as the
scalar per-player loop, stacked along a trial axis (``channel/
batch_players.py``).  Equivalence is therefore asserted two ways:

* **exactly**, trial by trial, for the deterministic advice protocols
  (candidate scan, tree descent) - including under deterministic faulty
  advice, which exercises the exhaustion path;
* **statistically**, on solved/rounds statistics of fixed-seed batches,
  for the randomized protocols (backoff, the per-player views of the
  uniform/advice protocols) - both paths draw the same per-player
  Bernoulli decisions, only the RNG stream order differs, so the
  comparisons are deterministic given the seeds and never flake.

Coverage spans every batchable registry player protocol x advice
function x channel pairing, plus the engine contracts: solved rows must
freeze (stop consuming randomness), non-batchable combinators must be
rejected loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.montecarlo import (
    ENGINE_BATCH_PLAYER,
    ENGINE_SCALAR_PLAYER,
    estimate_player_rounds,
    select_player_engine,
)
from repro.channel import (
    is_player_batchable,
    is_player_fusable,
    pack_participants,
    run_players,
    run_players_batch,
    run_players_stacked,
)
from repro.channel.channel import Channel
from repro.channel.models import (
    CrashModel,
    NoisyChannel,
    ObliviousJammer,
    ReactiveJammer,
)
from repro.channel.network import (
    ClusteredAdversary,
    PrefixAdversary,
    RandomAdversary,
    SpreadAdversary,
    SuffixAdversary,
)
from repro.core.advice import (
    AdviceFunction,
    FullIdAdvice,
    MinIdPrefixAdvice,
    NullAdvice,
    RangeBlockAdvice,
    id_bit_width,
    id_to_bits,
)
from repro.core.protocol import ProtocolError
from repro.protocols import (
    BinaryExponentialBackoff,
    DecayProtocol,
    DeterministicScanProtocol,
    DeterministicTreeDescentProtocol,
    FallbackPlayerProtocol,
    TruncatedDecayProtocol,
    UniformAsPlayerProtocol,
    WillardProtocol,
    truncated_willard_protocol,
)
from repro.protocols.restart import RestartProtocol

N = 2**8
TRIALS = 300
MAX_ROUNDS = 600


class _WrongSubtreeAdvice(AdviceFunction):
    """Deterministic faulty advice: points at the complement subtree.

    Replaces the min-id prefix with its bitwise complement, so the scan /
    descent trusts advice naming a subtree with no active player whenever
    the participants share the true prefix - the exhaustion ("give up
    cleanly") path, exercised identically by both engines because the
    corruption consumes no randomness.
    """

    def advise(self, participants, n: int) -> str:
        width = id_bit_width(n)
        true_prefix = id_to_bits(min(participants), width)[: self.bits]
        return "".join("1" if bit == "0" else "0" for bit in true_prefix)


def _participant_batches(adversary, k: int, trials: int = TRIALS):
    rng = np.random.default_rng(97)
    return [adversary.checked_select(N, k, rng) for _ in range(trials)]


def _scalar_results(protocol, sets, channel, advice_function, seed):
    rng = np.random.default_rng(seed)
    solved, rounds = [], []
    for participants in sets:
        result = run_players(
            protocol,
            participants,
            N,
            rng,
            channel=channel,
            advice_function=advice_function,
            max_rounds=MAX_ROUNDS,
        )
        solved.append(result.solved)
        rounds.append(result.rounds)
    return np.asarray(solved), np.asarray(rounds)


DETERMINISTIC_CASES = [
    # (label, protocol factory, advice factory, cd, adversary)
    ("scan/b=0/no-cd", lambda: DeterministicScanProtocol(0),
     lambda: MinIdPrefixAdvice(0), False, RandomAdversary()),
    ("scan/b=3/no-cd", lambda: DeterministicScanProtocol(3),
     lambda: MinIdPrefixAdvice(3), False, RandomAdversary()),
    ("scan/b=3/cd", lambda: DeterministicScanProtocol(3),
     lambda: MinIdPrefixAdvice(3), True, SuffixAdversary()),
    ("scan/b=3/faulty", lambda: DeterministicScanProtocol(3),
     lambda: _WrongSubtreeAdvice(3), False, PrefixAdversary()),
    # Wrong advice *family*: range-block bits fed to a subtree scan are
    # budget-valid but point at the k-range, not the min id - a
    # deterministic mis-advice both engines must handle identically.
    ("scan/b=3/range-block", lambda: DeterministicScanProtocol(3),
     lambda: RangeBlockAdvice(3), False, RandomAdversary()),
    ("scan/full-id", lambda: DeterministicScanProtocol(id_bit_width(N)),
     lambda: FullIdAdvice(N), False, ClusteredAdversary()),
    ("descent/b=0", lambda: DeterministicTreeDescentProtocol(0),
     lambda: MinIdPrefixAdvice(0), True, RandomAdversary()),
    ("descent/b=4", lambda: DeterministicTreeDescentProtocol(4),
     lambda: MinIdPrefixAdvice(4), True, SpreadAdversary()),
    ("descent/b=4/faulty", lambda: DeterministicTreeDescentProtocol(4),
     lambda: _WrongSubtreeAdvice(4), True, ClusteredAdversary()),
    ("descent/full-id", lambda: DeterministicTreeDescentProtocol(id_bit_width(N)),
     lambda: FullIdAdvice(N), True, SuffixAdversary()),
]


class TestDeterministicExactness:
    """Deterministic protocols match the scalar engine trial by trial."""

    @pytest.mark.parametrize(
        "label,make_protocol,make_advice,cd,adversary",
        DETERMINISTIC_CASES,
        ids=[case[0] for case in DETERMINISTIC_CASES],
    )
    def test_batch_equals_scalar_per_trial(
        self, label, make_protocol, make_advice, cd, adversary,
        cd_channel, nocd_channel,
    ):
        channel = cd_channel if cd else nocd_channel
        protocol = make_protocol()
        assert is_player_batchable(protocol)
        sets = _participant_batches(adversary, k=4, trials=64)
        scalar_solved, scalar_rounds = _scalar_results(
            protocol, sets, channel, make_advice(), seed=5
        )
        batch = run_players_batch(
            protocol, sets, N, np.random.default_rng(6), channel=channel,
            advice_function=make_advice(), max_rounds=MAX_ROUNDS,
        )
        assert (batch.solved == scalar_solved).all(), label
        assert (batch.rounds == scalar_rounds).all(), label

    def test_varying_participant_sizes_pad_correctly(self, nocd_channel):
        """Trials of different k share one padded id array."""
        protocol = DeterministicScanProtocol(2)
        sets = [frozenset({10}), frozenset(range(20, 26)), frozenset({1, 250})]
        scalar_solved, scalar_rounds = _scalar_results(
            protocol, sets, nocd_channel, MinIdPrefixAdvice(2), seed=0
        )
        batch = run_players_batch(
            protocol, sets, N, np.random.default_rng(0),
            channel=nocd_channel, advice_function=MinIdPrefixAdvice(2),
            max_rounds=MAX_ROUNDS,
        )
        assert (batch.ks == np.array([1, 6, 2])).all()
        assert (batch.solved == scalar_solved).all()
        assert (batch.rounds == scalar_rounds).all()

    def test_faulty_advice_exhaustion_bookkeeping(self, nocd_channel):
        """A scan pointed at an empty subtree gives up after its pass with
        the scalar rounds-played convention."""
        protocol = DeterministicScanProtocol(3)
        sets = [frozenset({0, 1})] * 5  # true prefix 000 -> advice says 111
        batch = run_players_batch(
            protocol, sets, N, np.random.default_rng(0),
            channel=nocd_channel, advice_function=_WrongSubtreeAdvice(3),
            max_rounds=MAX_ROUNDS,
        )
        assert not batch.solved.any()
        assert (batch.rounds == protocol.worst_case_rounds(N)).all()


RANDOMIZED_CASES = [
    ("backoff", lambda: BinaryExponentialBackoff(), True),
    ("uap-decay/no-cd", lambda: UniformAsPlayerProtocol(DecayProtocol(N)), False),
    ("uap-decay-one-shot",
     lambda: UniformAsPlayerProtocol(DecayProtocol(N, cycle=False)), False),
    ("uap-willard/cd", lambda: UniformAsPlayerProtocol(WillardProtocol(N)), True),
    ("uap-truncated-decay",
     lambda: UniformAsPlayerProtocol(
         TruncatedDecayProtocol.for_count(N, 1, 8)), False),
    ("uap-truncated-willard",
     lambda: UniformAsPlayerProtocol(
         truncated_willard_protocol(N, 1, 0)), True),
]


class TestRandomizedStatistics:
    """Randomized protocols agree statistically across the two engines."""

    @pytest.mark.parametrize(
        "label,make_protocol,cd",
        RANDOMIZED_CASES,
        ids=[case[0] for case in RANDOMIZED_CASES],
    )
    def test_statistics_agree(
        self, label, make_protocol, cd, cd_channel, nocd_channel
    ):
        channel = cd_channel if cd else nocd_channel
        protocol = make_protocol()
        assert is_player_batchable(protocol)
        sets = _participant_batches(RandomAdversary(), k=8)
        scalar_solved, scalar_rounds = _scalar_results(
            protocol, sets, channel, None, seed=11
        )
        batch = run_players_batch(
            protocol, sets, N, np.random.default_rng(13), channel=channel,
            max_rounds=MAX_ROUNDS,
        )
        assert batch.solved.mean() == pytest.approx(
            scalar_solved.mean(), abs=0.05
        ), label
        if scalar_solved.any() and batch.num_solved:
            assert batch.solved_rounds().mean() == pytest.approx(
                scalar_rounds[scalar_solved].mean(), rel=0.15, abs=0.75
            ), label


class TestFallbackCombinator:
    """The vectorized fallback wrapper against its scalar reference."""

    def test_deterministic_fallback_matches_scalar_exactly(
        self, nocd_channel
    ):
        """scan(b) under wrong-subtree advice exhausts its pass, switches
        every trial to the advice-free scan(0), and must reproduce the
        scalar wrapper trial by trial (everything is deterministic)."""
        protocol = FallbackPlayerProtocol(
            DeterministicScanProtocol(3),
            DeterministicScanProtocol(0),
            budget_rounds=DeterministicScanProtocol(3).worst_case_rounds(N),
        )
        assert is_player_batchable(protocol)
        assert protocol.supports_fused_sessions()
        sets = _participant_batches(PrefixAdversary(), k=3, trials=48)
        scalar_solved, scalar_rounds = _scalar_results(
            protocol, sets, nocd_channel, _WrongSubtreeAdvice(3), seed=2
        )
        batch = run_players_batch(
            protocol, sets, N, np.random.default_rng(3), channel=nocd_channel,
            advice_function=_WrongSubtreeAdvice(3), max_rounds=MAX_ROUNDS,
        )
        assert (batch.solved == scalar_solved).all()
        assert (batch.rounds == scalar_rounds).all()
        assert batch.solved.any()  # the fallback actually rescued trials

    def test_descent_fallback_matches_scalar_exactly(self, cd_channel):
        """Tree descent under faulty advice gives up at the leaf and
        switches early (per-trial phase flip); the advice-free descent
        then recovers - exact agreement again."""
        protocol = FallbackPlayerProtocol(
            DeterministicTreeDescentProtocol(4),
            DeterministicTreeDescentProtocol(0),
            budget_rounds=DeterministicTreeDescentProtocol(4).worst_case_rounds(N),
        )
        sets = _participant_batches(ClusteredAdversary(), k=4, trials=48)
        scalar_solved, scalar_rounds = _scalar_results(
            protocol, sets, cd_channel, _WrongSubtreeAdvice(4), seed=4
        )
        batch = run_players_batch(
            protocol, sets, N, np.random.default_rng(5), channel=cd_channel,
            advice_function=_WrongSubtreeAdvice(4), max_rounds=MAX_ROUNDS,
        )
        assert (batch.solved == scalar_solved).all()
        assert (batch.rounds == scalar_rounds).all()
        assert batch.solved.any()

    def test_randomized_fallback_agrees_statistically(self, nocd_channel):
        """The ADVICE-ROBUST shape: deterministic scan falling back to a
        per-player decay view (randomized decisions)."""
        def make() -> FallbackPlayerProtocol:
            return FallbackPlayerProtocol(
                DeterministicScanProtocol(3),
                UniformAsPlayerProtocol(DecayProtocol(N)),
                budget_rounds=DeterministicScanProtocol(3).worst_case_rounds(N),
            )

        assert is_player_batchable(make())
        assert not make().supports_fused_sessions()  # randomized half
        sets = _participant_batches(RandomAdversary(), k=6)
        scalar_solved, scalar_rounds = _scalar_results(
            make(), sets, nocd_channel, _WrongSubtreeAdvice(3), seed=21
        )
        batch = run_players_batch(
            make(), sets, N, np.random.default_rng(23), channel=nocd_channel,
            advice_function=_WrongSubtreeAdvice(3), max_rounds=MAX_ROUNDS,
        )
        assert batch.solved.mean() == pytest.approx(
            scalar_solved.mean(), abs=0.05
        )
        if scalar_solved.any() and batch.num_solved:
            assert batch.solved_rounds().mean() == pytest.approx(
                scalar_rounds[scalar_solved].mean(), rel=0.15, abs=1.0
            )

    def test_staggered_exhaustion_gets_fresh_fallback_per_switch_round(
        self, nocd_channel
    ):
        """A primary may exhaust different rows at different rounds; each
        row's fallback must start from its own round 1 (the scalar
        wrapper creates the fallback session at the switch round), so
        late-switching rows may not join an already-advanced fallback."""
        from repro.core.protocol import (
            PlayerBatchSessions,
            PlayerProtocol,
            PlayerSession,
            ScheduleExhausted,
        )

        exhaust_rounds = (3, 4)  # trial 0 gives up at round 3, trial 1 at 4

        class _StaggeredSession(PlayerSession):
            def __init__(self, limit):
                self._limit = limit
                self._round = 0

            def decide(self):
                self._round += 1
                if self._round >= self._limit:
                    raise ScheduleExhausted("staggered give-up")
                return False

            def observe(self, observation, *, transmitted):
                del observation, transmitted

        class _StaggeredBatch(PlayerBatchSessions):
            def __init__(self, trials, players):
                self._shape = (trials, players)
                self._round = 0

            def decide(self, live):
                self._round += 1
                limits = np.asarray([exhaust_rounds[t] for t in live])
                return (
                    np.zeros((live.size, self._shape[1]), dtype=bool),
                    self._round >= limits,
                )

            def observe(self, live, observations, decisions):
                del live, observations, decisions

        class _StaggeredPrimary(PlayerProtocol):
            advice_bits = 0
            name = "staggered"

            def __init__(self):
                self._sessions_made = 0

            def session(self, player_id, n, advice, rng=None):
                # One player per trial, trials run in order: the session
                # index is the trial index.
                limit = exhaust_rounds[self._sessions_made]
                self._sessions_made += 1
                return _StaggeredSession(limit)

            def supports_batch_sessions(self):
                return True

            def batch_sessions(self, player_ids, n, advice, rng=None):
                return _StaggeredBatch(*player_ids.shape)

        def make_protocol() -> FallbackPlayerProtocol:
            return FallbackPlayerProtocol(
                _StaggeredPrimary(),
                DeterministicScanProtocol(0),
                budget_rounds=10,
            )

        sets = [frozenset({5}), frozenset({5})]
        scalar_solved, scalar_rounds = _scalar_results(
            make_protocol(), sets, nocd_channel, NullAdvice(), seed=0
        )
        assert scalar_rounds.tolist() == [
            exhaust_rounds[0] + 5,  # fallback scan reaches slot 5 in
            exhaust_rounds[1] + 5,  # its own rounds 1..6 after switching
        ]
        batch = run_players_batch(
            make_protocol(), sets, N, np.random.default_rng(0),
            channel=nocd_channel, advice_function=NullAdvice(),
            max_rounds=MAX_ROUNDS,
        )
        assert (batch.solved == scalar_solved).all()
        assert (batch.rounds == scalar_rounds).all()

    def test_budget_switch_hits_all_trials_at_once(self, nocd_channel):
        """With correct advice and a tiny budget, every trial flips to
        the fallback at round budget+1, like the scalar global counter."""
        protocol = FallbackPlayerProtocol(
            DeterministicScanProtocol(2),
            DeterministicScanProtocol(0),
            budget_rounds=1,
        )
        sets = [frozenset({200, 201}), frozenset({100, 110})]
        scalar_solved, scalar_rounds = _scalar_results(
            protocol, sets, nocd_channel, MinIdPrefixAdvice(2), seed=0
        )
        batch = run_players_batch(
            protocol, sets, N, np.random.default_rng(0),
            channel=nocd_channel, advice_function=MinIdPrefixAdvice(2),
            max_rounds=MAX_ROUNDS,
        )
        assert (batch.solved == scalar_solved).all()
        assert (batch.rounds == scalar_rounds).all()


class TestStackedPlayerEngine:
    """run_players_stacked: points stacked into one randomness-free run."""

    def test_stacked_slices_match_solo_batches_exactly(self, cd_channel):
        """Two points' trials concatenated into one stacked run reproduce
        each point's solo batch bit for bit - including the wider id
        padding the stack imposes on the smaller point."""
        protocol = DeterministicTreeDescentProtocol(3)
        advice_fn = MinIdPrefixAdvice(3)
        point_sets = [
            _participant_batches(RandomAdversary(), k=3, trials=40),
            _participant_batches(ClusteredAdversary(), k=7, trials=40),
        ]
        point_advice = [
            [advice_fn.checked_advise(s, N) for s in sets]
            for sets in point_sets
        ]
        stacked = run_players_stacked(
            protocol,
            point_sets[0] + point_sets[1],
            N,
            point_advice[0] + point_advice[1],
            channel=cd_channel,
            max_rounds=MAX_ROUNDS,
        )
        for index, sets in enumerate(point_sets):
            solo = run_players_batch(
                protocol, sets, N, np.random.default_rng(0),
                channel=cd_channel, advice_function=advice_fn,
                max_rounds=MAX_ROUNDS,
            )
            segment = stacked.sliced(index * 40, (index + 1) * 40)
            assert (segment.solved == solo.solved).all(), index
            assert (segment.rounds == solo.rounds).all(), index
            assert (segment.ks == solo.ks).all(), index

    def test_rejects_non_fusable_protocols(self, cd_channel):
        assert not is_player_fusable(BinaryExponentialBackoff())
        with pytest.raises(ValueError, match="randomness-free"):
            run_players_stacked(
                BinaryExponentialBackoff(), [frozenset({1})], N, [""],
                channel=cd_channel, max_rounds=5,
            )

    def test_rejects_misaligned_advice(self, cd_channel):
        with pytest.raises(ValueError, match="advice string per trial"):
            run_players_stacked(
                DeterministicTreeDescentProtocol(0),
                [frozenset({1, 2}), frozenset({3, 4})],
                N,
                [""],
                channel=cd_channel,
                max_rounds=5,
            )


class _CountingRng:
    """Duck-typed generator recording how many uniforms were requested."""

    def __init__(self) -> None:
        self.requested = 0
        self._rng = np.random.default_rng(0)

    def random(self, shape):
        self.requested += int(np.prod(shape))
        return self._rng.random(shape)


class TestSolvedRowFreezing:
    """Retired trials must stop consuming randomness immediately."""

    @pytest.mark.parametrize(
        "make_protocol",
        [
            lambda: BinaryExponentialBackoff(),
            lambda: UniformAsPlayerProtocol(WillardProtocol(N)),
        ],
        ids=["backoff", "uap-willard"],
    )
    def test_decide_draws_shrink_with_live_set(self, make_protocol):
        protocol = make_protocol()
        ids = pack_participants(
            [frozenset({1, 2, 3}), frozenset({4, 5, 6}), frozenset({7, 8, 9})]
        )
        counter = _CountingRng()
        sessions = protocol.batch_sessions(ids, N, ("", "", ""), rng=counter)
        sessions.decide(np.arange(3))
        after_full_round = counter.requested
        assert after_full_round == 9  # 3 live trials x 3 player slots
        # Trial 1 retires: the next round may only draw for trials 0 and 2.
        sessions.decide(np.asarray([0, 2]))
        assert counter.requested - after_full_round == 6

    def test_first_round_winner_consumes_one_round_of_randomness(
        self, cd_channel
    ):
        """A trial that succeeds in round 1 is never drawn for again: the
        total uniforms consumed equal the per-round live counts."""
        protocol = BinaryExponentialBackoff(initial_window=1.0)
        # k=1 with w0=1: every trial transmits alone in round 1 and wins.
        sets = [frozenset({7}), frozenset({9})]
        counter = _CountingRng()
        batch = run_players_batch(
            protocol, sets, N, counter, channel=cd_channel, max_rounds=50,
        )
        assert batch.solved.all()
        assert (batch.rounds == 1).all()
        assert counter.requested == 2  # one draw per trial, round 1 only


class TestEngineContracts:
    def test_fallback_combinator_is_batchable_when_halves_are(self):
        fallback = FallbackPlayerProtocol(
            DeterministicTreeDescentProtocol(2),
            UniformAsPlayerProtocol(WillardProtocol(N)),
            budget_rounds=32,
        )
        assert is_player_batchable(fallback)

    def test_rejects_non_batchable_protocols(self, cd_channel):
        randomized_half = UniformAsPlayerProtocol(
            RestartProtocol(lambda: WillardProtocol(N))
        )
        fallback = FallbackPlayerProtocol(
            DeterministicTreeDescentProtocol(2),
            randomized_half,
            budget_rounds=32,
        )
        assert not is_player_batchable(fallback)
        with pytest.raises(ValueError, match="no batch player sessions"):
            run_players_batch(
                fallback, [frozenset({1, 2})], N, np.random.default_rng(0),
                channel=cd_channel, advice_function=MinIdPrefixAdvice(2),
                max_rounds=10,
            )

    def test_uniform_as_player_inherits_inner_batchability(self):
        randomized = RestartProtocol(lambda: DecayProtocol(N, cycle=False))
        assert not is_player_batchable(UniformAsPlayerProtocol(randomized))
        assert is_player_batchable(UniformAsPlayerProtocol(DecayProtocol(N)))

    def test_rejects_bad_inputs(self, cd_channel):
        protocol = BinaryExponentialBackoff()
        with pytest.raises(ValueError, match="non-empty"):
            run_players_batch(
                protocol, [], N, np.random.default_rng(0),
                channel=cd_channel, max_rounds=5,
            )
        with pytest.raises(ValueError, match="non-empty"):
            run_players_batch(
                protocol, [frozenset()], N, np.random.default_rng(0),
                channel=cd_channel, max_rounds=5,
            )
        with pytest.raises(ValueError, match="budget"):
            run_players_batch(
                protocol, [frozenset({1})], N, np.random.default_rng(0),
                channel=cd_channel, max_rounds=0,
            )

    def test_cd_protocol_needs_cd_channel(self, nocd_channel):
        with pytest.raises(ProtocolError):
            run_players_batch(
                BinaryExponentialBackoff(), [frozenset({1})], N,
                np.random.default_rng(0), channel=nocd_channel, max_rounds=5,
            )

    def test_advice_budget_mismatch_rejected(self, cd_channel):
        with pytest.raises(ProtocolError, match="advice bits"):
            run_players_batch(
                DeterministicTreeDescentProtocol(3), [frozenset({1, 2})], N,
                np.random.default_rng(0), channel=cd_channel,
                advice_function=NullAdvice(), max_rounds=5,
            )

    def test_budget_censoring_matches_scalar_convention(self, cd_channel):
        """Trials alive at the budget report rounds == max_rounds."""
        protocol = BinaryExponentialBackoff(initial_window=float(2**18))
        sets = [frozenset(range(8))] * 6
        batch = run_players_batch(
            protocol, sets, N, np.random.default_rng(0), channel=cd_channel,
            max_rounds=7,
        )
        assert not batch.solved.any()
        assert (batch.rounds == 7).all()

    def test_pack_participants_orders_and_pads(self):
        ids = pack_participants([frozenset({9, 3, 17}), frozenset({2})])
        assert ids.tolist() == [[3, 9, 17], [2, -1, -1]]


class TestMonteCarloWiring:
    """estimate_player_rounds routes to the batch player engine."""

    def _estimate(self, protocol, batch, seed=0, advice=None, trials=60):
        adversary = RandomAdversary()
        return estimate_player_rounds(
            protocol,
            lambda rng: adversary.checked_select(N, 5, rng),
            N,
            np.random.default_rng(seed),
            channel=Channel(collision_detection=True),
            advice_function=advice,
            trials=trials,
            max_rounds=MAX_ROUNDS,
            batch=batch,
        )

    def test_auto_uses_batch_and_agrees_with_scalar(self):
        protocol = DeterministicTreeDescentProtocol(2)
        advice = MinIdPrefixAdvice(2)
        auto = self._estimate(protocol, None, seed=3, advice=advice)
        scalar = self._estimate(protocol, False, seed=3, advice=advice)
        # Deterministic protocol + deterministic advice: only the stream
        # *order* differs, and neither engine consumes simulation
        # randomness, so the estimates agree exactly.
        assert auto.rounds == scalar.rounds
        assert auto.success == scalar.success

    def test_batch_true_rejects_non_batchable(self):
        fallback = FallbackPlayerProtocol(
            DeterministicTreeDescentProtocol(0),
            UniformAsPlayerProtocol(RestartProtocol(lambda: WillardProtocol(N))),
            budget_rounds=16,
        )
        with pytest.raises(ValueError, match="batch=True"):
            self._estimate(fallback, True)

    def test_select_player_engine_routing(self):
        assert (
            select_player_engine(BinaryExponentialBackoff())
            == ENGINE_BATCH_PLAYER
        )
        assert (
            select_player_engine(BinaryExponentialBackoff(), False)
            == ENGINE_SCALAR_PLAYER
        )
        # The fallback combinator batches when both halves do...
        batchable = FallbackPlayerProtocol(
            DeterministicTreeDescentProtocol(0),
            UniformAsPlayerProtocol(WillardProtocol(N)),
            budget_rounds=16,
        )
        assert select_player_engine(batchable) == ENGINE_BATCH_PLAYER
        # ...and stays scalar when a half cannot (randomized sessions).
        fallback = FallbackPlayerProtocol(
            DeterministicTreeDescentProtocol(0),
            UniformAsPlayerProtocol(RestartProtocol(lambda: WillardProtocol(N))),
            budget_rounds=16,
        )
        assert select_player_engine(fallback) == ENGINE_SCALAR_PLAYER
        with pytest.raises(ValueError, match="batch=True"):
            select_player_engine(fallback, True)


class TestAdversarialPlayers:
    """The fault-injecting channel models on the player engines."""

    JAMMERS = [
        ("jam-oblivious", lambda: ObliviousJammer(budget=2, start=1)),
        ("jam-reactive", lambda: ReactiveJammer(budget=2, quiet_streak=2)),
    ]

    @pytest.mark.parametrize(
        "label,make_model", JAMMERS, ids=[case[0] for case in JAMMERS]
    )
    def test_jammed_deterministic_protocols_agree_exactly(
        self, label, make_model, cd_channel, nocd_channel
    ):
        """Jammers consume no randomness, so the deterministic scan and
        descent stay deterministic under them: batch equals scalar trial
        by trial on both channels."""
        cases = [
            (DeterministicScanProtocol(3), MinIdPrefixAdvice(3),
             nocd_channel.with_model(make_model())),
            (DeterministicTreeDescentProtocol(4), MinIdPrefixAdvice(4),
             cd_channel.with_model(make_model())),
        ]
        for protocol, advice_fn, channel in cases:
            sets = _participant_batches(RandomAdversary(), k=4, trials=48)
            scalar_solved, scalar_rounds = _scalar_results(
                protocol, sets, channel, advice_fn, seed=5
            )
            batch = run_players_batch(
                protocol, sets, N, np.random.default_rng(6), channel=channel,
                advice_function=advice_fn, max_rounds=MAX_ROUNDS,
            )
            assert (batch.solved == scalar_solved).all(), label
            assert (batch.rounds == scalar_rounds).all(), label

    def test_jammed_stacked_matches_solo_batch_exactly(self, cd_channel):
        """Jammers stay fusable: the stacked (randomness-free) player run
        under a jam model reproduces the solo batch bit for bit."""
        channel = cd_channel.with_model(ObliviousJammer(budget=3))
        protocol = DeterministicTreeDescentProtocol(3)
        advice_fn = MinIdPrefixAdvice(3)
        sets = _participant_batches(ClusteredAdversary(), k=5, trials=40)
        advice = [advice_fn.checked_advise(s, N) for s in sets]
        stacked = run_players_stacked(
            protocol, sets, N, advice, channel=channel,
            max_rounds=MAX_ROUNDS,
        )
        solo = run_players_batch(
            protocol, sets, N, np.random.default_rng(0), channel=channel,
            advice_function=advice_fn, max_rounds=MAX_ROUNDS,
        )
        assert (stacked.solved == solo.solved).all()
        assert (stacked.rounds == solo.rounds).all()

    def test_noise_statistics_agree(self, cd_channel):
        """Backoff under noisy feedback: the scalar loop and the batch
        player engine draw the same fault distribution (one uniform per
        live trial per round), so fixed-seed statistics agree."""
        channel = cd_channel.with_model(
            NoisyChannel(collision_to_silence=0.1, success_erasure=0.2)
        )
        protocol = BinaryExponentialBackoff()
        sets = _participant_batches(RandomAdversary(), k=6)
        scalar_solved, scalar_rounds = _scalar_results(
            protocol, sets, channel, None, seed=11
        )
        batch = run_players_batch(
            protocol, sets, N, np.random.default_rng(13), channel=channel,
            max_rounds=MAX_ROUNDS,
        )
        assert batch.solved.mean() == pytest.approx(
            scalar_solved.mean(), abs=0.05
        )
        assert batch.solved_rounds().mean() == pytest.approx(
            scalar_rounds[scalar_solved].mean(), rel=0.15, abs=0.75
        )

    def test_null_model_bit_identical_on_player_batch(self, cd_channel):
        """Zero-fault noise reduces to the faithful channel exactly."""
        protocol = BinaryExponentialBackoff()
        sets = _participant_batches(RandomAdversary(), k=5, trials=80)
        faithful = run_players_batch(
            protocol, sets, N, np.random.default_rng(9), channel=cd_channel,
            max_rounds=MAX_ROUNDS,
        )
        nulled = run_players_batch(
            protocol, sets, N, np.random.default_rng(9),
            channel=cd_channel.with_model(NoisyChannel()),
            max_rounds=MAX_ROUNDS,
        )
        assert (faithful.solved == nulled.solved).all()
        assert (faithful.rounds == nulled.rounds).all()

    def test_stacked_rejects_random_fault_models(self, cd_channel):
        """The randomness-free stacked engine cannot host models that
        draw per-round faults - they must stay on the serial path."""
        with pytest.raises(ValueError, match="serial executor"):
            run_players_stacked(
                DeterministicTreeDescentProtocol(0),
                [frozenset({1})],
                N,
                [""],
                channel=cd_channel.with_model(
                    NoisyChannel(success_erasure=0.5)
                ),
                max_rounds=5,
            )

    def test_batch_rejects_unbatchable_crash(self, cd_channel):
        """Crash models with a rejoin delay need the scalar player loop
        (the live participant count changes mid-trial)."""
        with pytest.raises(ValueError, match="scalar"):
            run_players_batch(
                BinaryExponentialBackoff(),
                [frozenset({1, 2})],
                N,
                np.random.default_rng(0),
                channel=cd_channel.with_model(
                    CrashModel(probability=0.5, rejoin_after=2)
                ),
                max_rounds=5,
            )

    def test_scalar_crash_without_rejoin_kills_the_execution(self, cd_channel):
        """q=1, never rejoin: every lone success crashes its sender, so
        the execution can never deliver a message."""
        channel = cd_channel.with_model(
            CrashModel(probability=1.0, rejoin_after=None)
        )
        result = run_players(
            BinaryExponentialBackoff(), frozenset({3, 7}), N,
            np.random.default_rng(1), channel=channel, max_rounds=200,
        )
        assert not result.solved
        assert result.rounds == 200

    def test_scalar_crash_with_rejoin_recovers(self, cd_channel):
        """A crashed player rejoins with a fresh session and the
        execution still solves - crashes delay, they do not kill."""
        channel = cd_channel.with_model(
            CrashModel(probability=0.5, rejoin_after=2)
        )
        result = run_players(
            BinaryExponentialBackoff(), frozenset({3, 7}), N,
            np.random.default_rng(2), channel=channel, max_rounds=3000,
        )
        assert result.solved

    def test_crash_rejoin_zero_agrees_with_batch(self, cd_channel):
        """rejoin_after=0 is exactly a success erasure, hence batchable:
        scalar and batch statistics agree under it."""
        channel = cd_channel.with_model(
            CrashModel(probability=0.3, rejoin_after=0)
        )
        protocol = BinaryExponentialBackoff()
        sets = _participant_batches(RandomAdversary(), k=4, trials=200)
        scalar_solved, scalar_rounds = _scalar_results(
            protocol, sets, channel, None, seed=17
        )
        batch = run_players_batch(
            protocol, sets, N, np.random.default_rng(19), channel=channel,
            max_rounds=MAX_ROUNDS,
        )
        assert batch.solved.mean() == pytest.approx(
            scalar_solved.mean(), abs=0.06
        )
        assert batch.solved_rounds().mean() == pytest.approx(
            scalar_rounds[scalar_solved].mean(), rel=0.15, abs=0.75
        )
