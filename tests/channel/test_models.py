"""Unit tests for the adversarial channel models (repro.channel.models)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.channel import Channel, with_collision_detection
from repro.channel.models import (
    ADAPTIVE_STRATEGIES,
    CHANNEL_MODELS,
    FB_COLLISION,
    FB_SILENCE,
    FB_SUCCESS,
    AdaptiveAdversary,
    AdaptiveStrategy,
    ChannelModel,
    CrashModel,
    NoisyChannel,
    ObliviousJammer,
    ReactiveJammer,
    channel_model_from_dict,
    register_adaptive_strategy,
)
from repro.core.feedback import Feedback


class TestObliviousJammer:
    def test_jam_schedule_consumes_exactly_the_budget(self):
        model = ObliviousJammer(budget=3, start=2, period=2)
        jammed = [r for r in range(1, 20) if model.jams_round(r)]
        assert jammed == [2, 4, 6]

    def test_jams_every_round_from_one_by_default(self):
        model = ObliviousJammer(budget=4)
        assert [model.jams_round(r) for r in range(1, 7)] == [
            True, True, True, True, False, False,
        ]

    def test_scalar_state_delivers_collisions_on_jam_rounds(self, rng):
        state = ObliviousJammer(budget=2).scalar_state()
        assert state.deliver(1, Feedback.SUCCESS, rng) is Feedback.COLLISION
        assert state.deliver(2, Feedback.SILENCE, rng) is Feedback.COLLISION
        assert state.deliver(3, Feedback.SUCCESS, rng) is Feedback.SUCCESS
        assert state.jams_used == 2

    def test_batch_state_overwrites_all_live_codes(self):
        state = ObliviousJammer(budget=1).batch_state(4)
        codes = np.array([FB_SILENCE, FB_SUCCESS, FB_COLLISION, FB_SUCCESS])
        out = state.perturb(1, codes, None)
        assert (out == FB_COLLISION).all()
        out = state.perturb(2, np.array([FB_SUCCESS]), None)
        assert (out == FB_SUCCESS).all()

    def test_null_and_flags(self):
        assert ObliviousJammer(budget=0).is_null()
        assert not ObliviousJammer(budget=1).is_null()
        model = ObliviousJammer(budget=1)
        assert model.batchable and not model.needs_fault_draws

    def test_validation(self):
        with pytest.raises(ValueError, match="jam budget must be >= 0"):
            ObliviousJammer(budget=-1)
        with pytest.raises(ValueError, match="jam start round must be >= 1"):
            ObliviousJammer(budget=1, start=0)
        with pytest.raises(ValueError, match="must be an integer"):
            ObliviousJammer(budget=True)


class TestReactiveJammer:
    def test_strikes_after_quiet_streak_and_resets(self, rng):
        state = ReactiveJammer(budget=2, quiet_streak=2).scalar_state()
        # Two delivered silences build the streak...
        assert state.deliver(1, Feedback.SILENCE, rng) is Feedback.SILENCE
        assert state.deliver(2, Feedback.SILENCE, rng) is Feedback.SILENCE
        # ...so the next round is jammed (whatever it was), streak resets.
        assert state.deliver(3, Feedback.SUCCESS, rng) is Feedback.COLLISION
        assert state.deliver(4, Feedback.SILENCE, rng) is Feedback.SILENCE
        assert state.deliver(5, Feedback.SILENCE, rng) is Feedback.SILENCE
        assert state.deliver(6, Feedback.SUCCESS, rng) is Feedback.COLLISION
        # Budget exhausted: streaks no longer trigger jams.
        assert state.deliver(7, Feedback.SILENCE, rng) is Feedback.SILENCE
        assert state.deliver(8, Feedback.SILENCE, rng) is Feedback.SILENCE
        assert state.deliver(9, Feedback.SUCCESS, rng) is Feedback.SUCCESS
        assert state.jams_used == 2

    def test_batch_state_tracks_per_trial_streaks(self):
        state = ReactiveJammer(budget=1, quiet_streak=1).batch_state(2)
        # Trial 0 silent (streak builds), trial 1 collides (no streak).
        out = state.perturb(1, np.array([FB_SILENCE, FB_COLLISION]), None)
        assert out.tolist() == [FB_SILENCE, FB_COLLISION]
        # Only trial 0 earned a jam.
        out = state.perturb(2, np.array([FB_SUCCESS, FB_SUCCESS]), None)
        assert out.tolist() == [FB_COLLISION, FB_SUCCESS]
        assert state.remaining.tolist() == [0, 1]

    def test_filter_keeps_state_aligned(self):
        state = ReactiveJammer(budget=5, quiet_streak=1).batch_state(3)
        state.perturb(1, np.array([FB_SILENCE, FB_COLLISION, FB_SILENCE]), None)
        state.filter(np.array([True, False, True]))
        assert state.streak.tolist() == [1, 1]
        assert state.remaining.tolist() == [5, 5]

    def test_null_and_validation(self):
        assert ReactiveJammer(budget=0).is_null()
        with pytest.raises(ValueError, match="quiet streak must be >= 1"):
            ReactiveJammer(budget=1, quiet_streak=0)


class TestNoisyChannel:
    def test_flip_directions(self):
        model = NoisyChannel(
            silence_to_collision=1.0,
            collision_to_silence=1.0,
            success_erasure=1.0,
        )
        rng = np.random.default_rng(0)
        state = model.scalar_state()
        assert state.deliver(1, Feedback.SILENCE, rng) is Feedback.COLLISION
        assert state.deliver(2, Feedback.COLLISION, rng) is Feedback.SILENCE
        assert state.deliver(3, Feedback.SUCCESS, rng) is Feedback.SILENCE

    def test_scalar_draws_one_uniform_per_round(self):
        class _Counting:
            calls = 0

            def random(self):
                type(self).calls += 1
                return 0.99

        state = NoisyChannel(silence_to_collision=0.5).scalar_state()
        counter = _Counting()
        for round_index, feedback in enumerate(
            [Feedback.SILENCE, Feedback.SUCCESS, Feedback.COLLISION], start=1
        ):
            assert state.deliver(round_index, feedback, counter) is feedback
        assert _Counting.calls == 3

    def test_batch_perturb_uses_per_code_thresholds(self):
        state = NoisyChannel(
            silence_to_collision=0.3, success_erasure=0.6
        ).batch_state(3)
        codes = np.array([FB_SILENCE, FB_SUCCESS, FB_COLLISION])
        draws = np.array([0.2, 0.5, 0.0])  # silence flips, success erased,
        out = state.perturb(1, codes, draws)  # collision has threshold 0
        assert out.tolist() == [FB_COLLISION, FB_SILENCE, FB_COLLISION]

    def test_null_and_flags(self):
        assert NoisyChannel().is_null()
        assert not NoisyChannel(success_erasure=0.1).is_null()
        assert NoisyChannel(success_erasure=0.1).needs_fault_draws

    def test_validation(self):
        with pytest.raises(ValueError, match=r"must be in \[0, 1\]"):
            NoisyChannel(silence_to_collision=1.5)
        with pytest.raises(ValueError, match=r"must be in \[0, 1\]"):
            NoisyChannel(success_erasure=-0.1)


class TestCrashModel:
    def test_rejoin_zero_is_pure_message_loss(self):
        state = CrashModel(probability=1.0, rejoin_after=0).scalar_state()
        rng = np.random.default_rng(0)
        assert state.deliver(1, Feedback.SUCCESS, rng) is Feedback.SILENCE
        assert not state.take_crash()
        assert state.active_count(5, 2) == 5

    def test_rejoin_delay_kills_then_revives(self):
        state = CrashModel(probability=1.0, rejoin_after=3).scalar_state()
        rng = np.random.default_rng(0)
        assert state.deliver(2, Feedback.SUCCESS, rng) is Feedback.SILENCE
        assert state.take_crash()
        assert not state.take_crash()  # the event is consumed
        # Dead through rounds 3..5, back at round 6.
        assert state.active_count(5, 3) == 4
        assert state.active_count(5, 5) == 4
        assert state.active_count(5, 6) == 5

    def test_never_rejoin(self):
        state = CrashModel(probability=1.0, rejoin_after=None).scalar_state()
        rng = np.random.default_rng(0)
        state.deliver(1, Feedback.SUCCESS, rng)
        assert state.take_crash()
        assert state.active_count(5, 100) == 4

    def test_only_success_rounds_draw_randomness(self):
        class _Counting:
            calls = 0

            def random(self):
                type(self).calls += 1
                return 0.99

        state = CrashModel(probability=0.5).scalar_state()
        counter = _Counting()
        state.deliver(1, Feedback.SILENCE, counter)
        state.deliver(2, Feedback.COLLISION, counter)
        assert _Counting.calls == 0
        state.deliver(3, Feedback.SUCCESS, counter)
        assert _Counting.calls == 1

    def test_capability_flags_split_by_rejoin_delay(self):
        """Every crash batches on the uniform engines; only the
        instant-rejoin variant keeps the population fixed, so only it is
        admissible on the player/open substrates."""
        instant = CrashModel(probability=0.5, rejoin_after=0)
        assert instant.batchable and instant.player_batchable
        assert not instant.shrinks_population

        for delayed in (
            CrashModel(probability=0.5, rejoin_after=1),
            CrashModel(probability=0.5),  # rejoin_after=None: dead forever
        ):
            assert delayed.batchable and delayed.shrinks_population
            assert not delayed.player_batchable
            assert delayed.batch_state(4) is not None

    def test_rejoin_batch_state_tracks_active_counts(self):
        """Crash at round r removes a station from the next r+1..r+d
        rounds and returns it at r+d+1; dead-forever never returns."""
        state = CrashModel(probability=1.0, rejoin_after=2).batch_state(2)
        ks = np.array([3, 3], dtype=np.int64)
        assert state.active_counts(ks, 1).tolist() == [3, 3]
        codes = np.array([FB_SUCCESS, FB_SILENCE])
        out = state.perturb(1, codes, np.array([0.0, 0.0]))
        assert out.tolist() == [FB_SILENCE, FB_SILENCE]
        # Trial 0's station is out for rounds 2 and 3, back at round 4.
        assert state.active_counts(ks, 2).tolist() == [2, 3]
        assert state.active_counts(ks, 3).tolist() == [2, 3]
        assert state.active_counts(ks, 4).tolist() == [3, 3]

        forever = CrashModel(probability=1.0, rejoin_after=None).batch_state(1)
        ks = np.array([2], dtype=np.int64)
        forever.perturb(1, np.array([FB_SUCCESS]), np.array([0.0]))
        for round_index in range(2, 8):
            assert forever.active_counts(ks, round_index).tolist() == [1]

    def test_batch_perturb_erases_successes_only(self):
        state = CrashModel(probability=0.5, rejoin_after=0).batch_state(3)
        codes = np.array([FB_SUCCESS, FB_SUCCESS, FB_COLLISION])
        out = state.perturb(1, codes, np.array([0.1, 0.9, 0.1]))
        assert out.tolist() == [FB_SILENCE, FB_SUCCESS, FB_COLLISION]

    def test_null_and_validation(self):
        assert CrashModel(probability=0.0).is_null()
        with pytest.raises(ValueError, match="crash probability"):
            CrashModel(probability=2.0)
        with pytest.raises(ValueError, match="rejoin delay"):
            CrashModel(probability=0.5, rejoin_after=-1)


class TestAdaptiveAdversary:
    def test_greedy_scalar_state_suppresses_successes(self, rng):
        state = AdaptiveAdversary(budget=2, strategy="greedy").scalar_state()
        assert state.deliver(1, Feedback.SILENCE, rng) is Feedback.SILENCE
        assert state.deliver(2, Feedback.SUCCESS, rng) is Feedback.COLLISION
        assert state.deliver(3, Feedback.COLLISION, rng) is Feedback.COLLISION
        assert state.jams_used == 1  # collisions are free, never jammed
        assert state.deliver(4, Feedback.SUCCESS, rng) is Feedback.COLLISION
        assert state.deliver(5, Feedback.SUCCESS, rng) is Feedback.SUCCESS
        assert state.jams_used == 2 and state.remaining == 0

    def test_batch_perturb_budget_and_collision_exemption(self):
        state = AdaptiveAdversary(budget=1, strategy="greedy").batch_state(3)
        codes = np.array([FB_SUCCESS, FB_COLLISION, FB_SILENCE])
        out = state.perturb(1, codes, None)
        # Success jammed, collision left alone (free), silence untouched.
        assert out.tolist() == [FB_COLLISION, FB_COLLISION, FB_SILENCE]
        assert state.remaining.tolist() == [0, 1, 1]
        out = state.perturb(2, np.array([FB_SUCCESS] * 3), None)
        assert out.tolist() == [FB_SUCCESS, FB_COLLISION, FB_COLLISION]
        assert state.spent.tolist() == [1, 1, 1]

    def test_filter_reindexes_budget_accounts(self):
        state = AdaptiveAdversary(budget=2, strategy="streak").batch_state(4)
        state.perturb(1, np.array([FB_SILENCE] * 4), None)
        state.perturb(2, np.full(4, FB_SUCCESS), None)
        state.filter(np.array([True, False, True, False]))
        assert state.remaining.shape == (2,)
        assert (state.remaining + state.spent == 2).all()
        assert state.arrays["streak"].shape == (2,)

    def test_scheduler_modes(self):
        front = AdaptiveAdversary(
            budget=2, strategy="scheduler", mode="front"
        ).batch_state(1)
        assert front.perturb(1, np.array([FB_SILENCE]), None).tolist() == [
            FB_COLLISION
        ]
        back = AdaptiveAdversary(
            budget=2, strategy="scheduler", mode="back"
        ).batch_state(1)
        # Unarmed until the first faithful success.
        assert back.perturb(1, np.array([FB_SILENCE]), None).tolist() == [
            FB_SILENCE
        ]
        assert back.perturb(2, np.array([FB_SUCCESS]), None).tolist() == [
            FB_COLLISION
        ]
        assert back.perturb(3, np.array([FB_SILENCE]), None).tolist() == [
            FB_COLLISION
        ]
        assert back.perturb(4, np.array([FB_SUCCESS]), None).tolist() == [
            FB_SUCCESS  # budget spent
        ]

    def test_validation_messages_are_actionable(self):
        with pytest.raises(ValueError, match="known strategies: greedy"):
            AdaptiveAdversary(budget=1, strategy="nope")
        with pytest.raises(ValueError, match="budget must be >= 0"):
            AdaptiveAdversary(budget=-1)
        with pytest.raises(ValueError, match="patience must be >= 1"):
            AdaptiveAdversary(budget=1, strategy="streak", patience=0)
        with pytest.raises(ValueError, match="'front' or 'back'"):
            AdaptiveAdversary(budget=1, strategy="scheduler", mode="up")

    def test_strategy_registry_rejects_duplicates(self):
        class _Dup(AdaptiveStrategy):
            name = "greedy"

            def jam_candidates(self, model, arrays, round_index, codes):
                raise NotImplementedError

        with pytest.raises(ValueError, match="already registered"):
            register_adaptive_strategy(_Dup())
        assert set(ADAPTIVE_STRATEGIES) >= {"greedy", "streak", "scheduler"}

    def test_null_and_flags(self):
        assert AdaptiveAdversary(budget=0).is_null()
        model = AdaptiveAdversary(budget=3, strategy="scheduler", mode="front")
        assert not model.is_null()
        assert model.batchable and model.player_batchable
        assert not model.needs_fault_draws
        assert not model.fusable  # deliberate fusion opt-out


class TestSerialization:
    @pytest.mark.parametrize(
        "model",
        [
            ObliviousJammer(budget=5, start=3, period=2),
            ReactiveJammer(budget=2, quiet_streak=4),
            NoisyChannel(silence_to_collision=0.1, success_erasure=0.25),
            CrashModel(probability=0.3, rejoin_after=7),
            CrashModel(probability=0.3, rejoin_after=None),
            AdaptiveAdversary(budget=4, strategy="greedy"),
            AdaptiveAdversary(budget=2, strategy="streak", patience=3),
            AdaptiveAdversary(budget=6, strategy="scheduler", mode="front"),
        ],
    )
    def test_dict_round_trip(self, model: ChannelModel):
        assert channel_model_from_dict(model.to_dict()) == model

    def test_registry_covers_every_model(self):
        assert set(CHANNEL_MODELS) == {
            "jam-oblivious", "jam-reactive", "jam-adaptive", "noise", "crash",
        }

    def test_unknown_model_lists_known_ones(self):
        with pytest.raises(ValueError) as error:
            channel_model_from_dict({"name": "bogus"})
        message = str(error.value)
        assert "bogus" in message
        for known in CHANNEL_MODELS:
            assert known in message

    def test_unknown_params_list_allowed_ones(self):
        with pytest.raises(ValueError, match="allowed: budget, start, period"):
            channel_model_from_dict(
                {"name": "jam-oblivious", "params": {"budget": 1, "bogus": 2}}
            )

    def test_unknown_top_level_fields_rejected(self):
        with pytest.raises(ValueError, match="allowed: name, params"):
            channel_model_from_dict({"name": "noise", "extra": 1})

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            channel_model_from_dict("noise")
        with pytest.raises(ValueError, match="params must be a mapping"):
            channel_model_from_dict({"name": "noise", "params": [1]})

    def test_labels_are_compact(self):
        assert (
            ObliviousJammer(budget=5).label()
            == "jam-oblivious(budget=5,start=1,period=1)"
        )


class TestChannelIntegration:
    def test_active_model_reduces_null_models(self):
        assert with_collision_detection(ObliviousJammer(budget=0)).active_model is None
        assert with_collision_detection(NoisyChannel()).active_model is None
        assert with_collision_detection(CrashModel(probability=0.0)).active_model is None
        jam = ObliviousJammer(budget=1)
        assert with_collision_detection(jam).active_model is jam

    def test_model_label(self):
        assert with_collision_detection().model_label() == "faithful"
        assert with_collision_detection(ObliviousJammer(budget=0)).model_label() == "faithful"
        assert "jam-oblivious" in with_collision_detection(
            ObliviousJammer(budget=2)
        ).model_label()

    def test_with_model(self):
        channel = with_collision_detection()
        jammed = channel.with_model(ObliviousJammer(budget=1))
        assert jammed.collision_detection
        assert jammed.active_model == ObliviousJammer(budget=1)
        assert jammed.with_model(None).active_model is None

    def test_channel_stays_hashable(self):
        a = Channel(True, NoisyChannel(success_erasure=0.5))
        b = Channel(True, NoisyChannel(success_erasure=0.5))
        assert a == b and hash(a) == hash(b)
