"""Unit tests for the adversarial channel models (repro.channel.models)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.channel import Channel, with_collision_detection
from repro.channel.models import (
    CHANNEL_MODELS,
    FB_COLLISION,
    FB_SILENCE,
    FB_SUCCESS,
    ChannelModel,
    CrashModel,
    NoisyChannel,
    ObliviousJammer,
    ReactiveJammer,
    channel_model_from_dict,
)
from repro.core.feedback import Feedback


class TestObliviousJammer:
    def test_jam_schedule_consumes_exactly_the_budget(self):
        model = ObliviousJammer(budget=3, start=2, period=2)
        jammed = [r for r in range(1, 20) if model.jams_round(r)]
        assert jammed == [2, 4, 6]

    def test_jams_every_round_from_one_by_default(self):
        model = ObliviousJammer(budget=4)
        assert [model.jams_round(r) for r in range(1, 7)] == [
            True, True, True, True, False, False,
        ]

    def test_scalar_state_delivers_collisions_on_jam_rounds(self, rng):
        state = ObliviousJammer(budget=2).scalar_state()
        assert state.deliver(1, Feedback.SUCCESS, rng) is Feedback.COLLISION
        assert state.deliver(2, Feedback.SILENCE, rng) is Feedback.COLLISION
        assert state.deliver(3, Feedback.SUCCESS, rng) is Feedback.SUCCESS
        assert state.jams_used == 2

    def test_batch_state_overwrites_all_live_codes(self):
        state = ObliviousJammer(budget=1).batch_state(4)
        codes = np.array([FB_SILENCE, FB_SUCCESS, FB_COLLISION, FB_SUCCESS])
        out = state.perturb(1, codes, None)
        assert (out == FB_COLLISION).all()
        out = state.perturb(2, np.array([FB_SUCCESS]), None)
        assert (out == FB_SUCCESS).all()

    def test_null_and_flags(self):
        assert ObliviousJammer(budget=0).is_null()
        assert not ObliviousJammer(budget=1).is_null()
        model = ObliviousJammer(budget=1)
        assert model.batchable and not model.needs_fault_draws

    def test_validation(self):
        with pytest.raises(ValueError, match="jam budget must be >= 0"):
            ObliviousJammer(budget=-1)
        with pytest.raises(ValueError, match="jam start round must be >= 1"):
            ObliviousJammer(budget=1, start=0)
        with pytest.raises(ValueError, match="must be an integer"):
            ObliviousJammer(budget=True)


class TestReactiveJammer:
    def test_strikes_after_quiet_streak_and_resets(self, rng):
        state = ReactiveJammer(budget=2, quiet_streak=2).scalar_state()
        # Two delivered silences build the streak...
        assert state.deliver(1, Feedback.SILENCE, rng) is Feedback.SILENCE
        assert state.deliver(2, Feedback.SILENCE, rng) is Feedback.SILENCE
        # ...so the next round is jammed (whatever it was), streak resets.
        assert state.deliver(3, Feedback.SUCCESS, rng) is Feedback.COLLISION
        assert state.deliver(4, Feedback.SILENCE, rng) is Feedback.SILENCE
        assert state.deliver(5, Feedback.SILENCE, rng) is Feedback.SILENCE
        assert state.deliver(6, Feedback.SUCCESS, rng) is Feedback.COLLISION
        # Budget exhausted: streaks no longer trigger jams.
        assert state.deliver(7, Feedback.SILENCE, rng) is Feedback.SILENCE
        assert state.deliver(8, Feedback.SILENCE, rng) is Feedback.SILENCE
        assert state.deliver(9, Feedback.SUCCESS, rng) is Feedback.SUCCESS
        assert state.jams_used == 2

    def test_batch_state_tracks_per_trial_streaks(self):
        state = ReactiveJammer(budget=1, quiet_streak=1).batch_state(2)
        # Trial 0 silent (streak builds), trial 1 collides (no streak).
        out = state.perturb(1, np.array([FB_SILENCE, FB_COLLISION]), None)
        assert out.tolist() == [FB_SILENCE, FB_COLLISION]
        # Only trial 0 earned a jam.
        out = state.perturb(2, np.array([FB_SUCCESS, FB_SUCCESS]), None)
        assert out.tolist() == [FB_COLLISION, FB_SUCCESS]
        assert state.remaining.tolist() == [0, 1]

    def test_filter_keeps_state_aligned(self):
        state = ReactiveJammer(budget=5, quiet_streak=1).batch_state(3)
        state.perturb(1, np.array([FB_SILENCE, FB_COLLISION, FB_SILENCE]), None)
        state.filter(np.array([True, False, True]))
        assert state.streak.tolist() == [1, 1]
        assert state.remaining.tolist() == [5, 5]

    def test_null_and_validation(self):
        assert ReactiveJammer(budget=0).is_null()
        with pytest.raises(ValueError, match="quiet streak must be >= 1"):
            ReactiveJammer(budget=1, quiet_streak=0)


class TestNoisyChannel:
    def test_flip_directions(self):
        model = NoisyChannel(
            silence_to_collision=1.0,
            collision_to_silence=1.0,
            success_erasure=1.0,
        )
        rng = np.random.default_rng(0)
        state = model.scalar_state()
        assert state.deliver(1, Feedback.SILENCE, rng) is Feedback.COLLISION
        assert state.deliver(2, Feedback.COLLISION, rng) is Feedback.SILENCE
        assert state.deliver(3, Feedback.SUCCESS, rng) is Feedback.SILENCE

    def test_scalar_draws_one_uniform_per_round(self):
        class _Counting:
            calls = 0

            def random(self):
                type(self).calls += 1
                return 0.99

        state = NoisyChannel(silence_to_collision=0.5).scalar_state()
        counter = _Counting()
        for round_index, feedback in enumerate(
            [Feedback.SILENCE, Feedback.SUCCESS, Feedback.COLLISION], start=1
        ):
            assert state.deliver(round_index, feedback, counter) is feedback
        assert _Counting.calls == 3

    def test_batch_perturb_uses_per_code_thresholds(self):
        state = NoisyChannel(
            silence_to_collision=0.3, success_erasure=0.6
        ).batch_state(3)
        codes = np.array([FB_SILENCE, FB_SUCCESS, FB_COLLISION])
        draws = np.array([0.2, 0.5, 0.0])  # silence flips, success erased,
        out = state.perturb(1, codes, draws)  # collision has threshold 0
        assert out.tolist() == [FB_COLLISION, FB_SILENCE, FB_COLLISION]

    def test_null_and_flags(self):
        assert NoisyChannel().is_null()
        assert not NoisyChannel(success_erasure=0.1).is_null()
        assert NoisyChannel(success_erasure=0.1).needs_fault_draws

    def test_validation(self):
        with pytest.raises(ValueError, match=r"must be in \[0, 1\]"):
            NoisyChannel(silence_to_collision=1.5)
        with pytest.raises(ValueError, match=r"must be in \[0, 1\]"):
            NoisyChannel(success_erasure=-0.1)


class TestCrashModel:
    def test_rejoin_zero_is_pure_message_loss(self):
        state = CrashModel(probability=1.0, rejoin_after=0).scalar_state()
        rng = np.random.default_rng(0)
        assert state.deliver(1, Feedback.SUCCESS, rng) is Feedback.SILENCE
        assert not state.take_crash()
        assert state.active_count(5, 2) == 5

    def test_rejoin_delay_kills_then_revives(self):
        state = CrashModel(probability=1.0, rejoin_after=3).scalar_state()
        rng = np.random.default_rng(0)
        assert state.deliver(2, Feedback.SUCCESS, rng) is Feedback.SILENCE
        assert state.take_crash()
        assert not state.take_crash()  # the event is consumed
        # Dead through rounds 3..5, back at round 6.
        assert state.active_count(5, 3) == 4
        assert state.active_count(5, 5) == 4
        assert state.active_count(5, 6) == 5

    def test_never_rejoin(self):
        state = CrashModel(probability=1.0, rejoin_after=None).scalar_state()
        rng = np.random.default_rng(0)
        state.deliver(1, Feedback.SUCCESS, rng)
        assert state.take_crash()
        assert state.active_count(5, 100) == 4

    def test_only_success_rounds_draw_randomness(self):
        class _Counting:
            calls = 0

            def random(self):
                type(self).calls += 1
                return 0.99

        state = CrashModel(probability=0.5).scalar_state()
        counter = _Counting()
        state.deliver(1, Feedback.SILENCE, counter)
        state.deliver(2, Feedback.COLLISION, counter)
        assert _Counting.calls == 0
        state.deliver(3, Feedback.SUCCESS, counter)
        assert _Counting.calls == 1

    def test_batchable_only_for_rejoin_zero(self):
        assert CrashModel(probability=0.5, rejoin_after=0).batchable
        assert not CrashModel(probability=0.5, rejoin_after=1).batchable
        assert not CrashModel(probability=0.5).batchable
        with pytest.raises(ValueError, match="scalar engine"):
            CrashModel(probability=0.5, rejoin_after=1).batch_state(4)

    def test_batch_perturb_erases_successes_only(self):
        state = CrashModel(probability=0.5, rejoin_after=0).batch_state(3)
        codes = np.array([FB_SUCCESS, FB_SUCCESS, FB_COLLISION])
        out = state.perturb(1, codes, np.array([0.1, 0.9, 0.1]))
        assert out.tolist() == [FB_SILENCE, FB_SUCCESS, FB_COLLISION]

    def test_null_and_validation(self):
        assert CrashModel(probability=0.0).is_null()
        with pytest.raises(ValueError, match="crash probability"):
            CrashModel(probability=2.0)
        with pytest.raises(ValueError, match="rejoin delay"):
            CrashModel(probability=0.5, rejoin_after=-1)


class TestSerialization:
    @pytest.mark.parametrize(
        "model",
        [
            ObliviousJammer(budget=5, start=3, period=2),
            ReactiveJammer(budget=2, quiet_streak=4),
            NoisyChannel(silence_to_collision=0.1, success_erasure=0.25),
            CrashModel(probability=0.3, rejoin_after=7),
            CrashModel(probability=0.3, rejoin_after=None),
        ],
    )
    def test_dict_round_trip(self, model: ChannelModel):
        assert channel_model_from_dict(model.to_dict()) == model

    def test_registry_covers_every_model(self):
        assert set(CHANNEL_MODELS) == {
            "jam-oblivious", "jam-reactive", "noise", "crash",
        }

    def test_unknown_model_lists_known_ones(self):
        with pytest.raises(ValueError) as error:
            channel_model_from_dict({"name": "bogus"})
        message = str(error.value)
        assert "bogus" in message
        for known in CHANNEL_MODELS:
            assert known in message

    def test_unknown_params_list_allowed_ones(self):
        with pytest.raises(ValueError, match="allowed: budget, start, period"):
            channel_model_from_dict(
                {"name": "jam-oblivious", "params": {"budget": 1, "bogus": 2}}
            )

    def test_unknown_top_level_fields_rejected(self):
        with pytest.raises(ValueError, match="allowed: name, params"):
            channel_model_from_dict({"name": "noise", "extra": 1})

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            channel_model_from_dict("noise")
        with pytest.raises(ValueError, match="params must be a mapping"):
            channel_model_from_dict({"name": "noise", "params": [1]})

    def test_labels_are_compact(self):
        assert (
            ObliviousJammer(budget=5).label()
            == "jam-oblivious(budget=5,start=1,period=1)"
        )


class TestChannelIntegration:
    def test_active_model_reduces_null_models(self):
        assert with_collision_detection(ObliviousJammer(budget=0)).active_model is None
        assert with_collision_detection(NoisyChannel()).active_model is None
        assert with_collision_detection(CrashModel(probability=0.0)).active_model is None
        jam = ObliviousJammer(budget=1)
        assert with_collision_detection(jam).active_model is jam

    def test_model_label(self):
        assert with_collision_detection().model_label() == "faithful"
        assert with_collision_detection(ObliviousJammer(budget=0)).model_label() == "faithful"
        assert "jam-oblivious" in with_collision_detection(
            ObliviousJammer(budget=2)
        ).model_label()

    def test_with_model(self):
        channel = with_collision_detection()
        jammed = channel.with_model(ObliviousJammer(budget=1))
        assert jammed.collision_detection
        assert jammed.active_model == ObliviousJammer(budget=1)
        assert jammed.with_model(None).active_model is None

    def test_channel_stays_hashable(self):
        a = Channel(True, NoisyChannel(success_erasure=0.5))
        b = Channel(True, NoisyChannel(success_erasure=0.5))
        assert a == b and hash(a) == hash(b)
