"""Unit and statistical tests for repro.channel.simulator."""

import numpy as np
import pytest

from repro.channel.simulator import run_players, run_uniform
from repro.channel.trace import ExecutionResult
from repro.core.advice import MinIdPrefixAdvice, NullAdvice
from repro.core.feedback import Feedback, Observation
from repro.core.protocol import PlayerProtocol, PlayerSession, ProtocolError
from repro.core.uniform import ProbabilitySchedule, ScheduleProtocol
from repro.protocols.willard import WillardProtocol


def constant_protocol(p: float, *, cycle: bool = True) -> ScheduleProtocol:
    return ScheduleProtocol(ProbabilitySchedule([p]), cycle=cycle)


class TestRunUniform:
    def test_k1_with_probability_one_solves_first_round(self, rng, nocd_channel):
        result = run_uniform(
            constant_protocol(1.0), 1, rng, channel=nocd_channel
        )
        assert result.solved and result.rounds == 1

    def test_k2_probability_one_never_solves(self, rng, nocd_channel):
        result = run_uniform(
            constant_protocol(1.0), 2, rng, channel=nocd_channel, max_rounds=50
        )
        assert not result.solved
        assert result.rounds == 50

    def test_rejects_k0(self, rng, nocd_channel):
        with pytest.raises(ValueError, match=">= 1"):
            run_uniform(constant_protocol(0.5), 0, rng, channel=nocd_channel)

    def test_rejects_zero_budget(self, rng, nocd_channel):
        with pytest.raises(ValueError, match="budget"):
            run_uniform(
                constant_protocol(0.5), 2, rng, channel=nocd_channel, max_rounds=0
            )

    def test_cd_protocol_on_nocd_channel_rejected(self, rng, nocd_channel):
        with pytest.raises(ProtocolError, match="collision detection"):
            run_uniform(WillardProtocol(64), 4, rng, channel=nocd_channel)

    def test_one_shot_exhaustion_reports_unsolved(self, rng, nocd_channel):
        protocol = ScheduleProtocol(
            ProbabilitySchedule([1e-12] * 3), cycle=False
        )
        result = run_uniform(protocol, 10, rng, channel=nocd_channel)
        assert not result.solved
        assert result.rounds == 3

    def test_trace_records_rounds(self, rng, nocd_channel):
        result = run_uniform(
            constant_protocol(0.3),
            5,
            rng,
            channel=nocd_channel,
            max_rounds=100,
            record_trace=True,
        )
        assert result.solved
        assert len(result.trace) == result.rounds
        last = result.trace[-1]
        assert last.feedback is Feedback.SUCCESS
        assert last.transmit_count == 1
        assert last.probability == 0.3

    def test_trace_round_indices_sequential(self, rng, nocd_channel):
        result = run_uniform(
            constant_protocol(0.2),
            4,
            rng,
            channel=nocd_channel,
            record_trace=True,
        )
        indices = [record.round_index for record in result.trace]
        assert indices == list(range(1, result.rounds + 1))

    def test_expected_rounds_geometric(self, rng, nocd_channel):
        """With constant p the solve time is geometric with rate kp(1-p)^(k-1)."""
        k, p = 10, 0.1
        rate = k * p * (1 - p) ** (k - 1)
        rounds = [
            run_uniform(
                constant_protocol(p), k, rng, channel=nocd_channel
            ).rounds
            for _ in range(4000)
        ]
        assert np.mean(rounds) == pytest.approx(1.0 / rate, rel=0.08)

    def test_deterministic_given_seed(self, nocd_channel):
        results = []
        for _ in range(2):
            rng = np.random.default_rng(123)
            results.append(
                run_uniform(
                    constant_protocol(0.05), 30, rng, channel=nocd_channel
                ).rounds
            )
        assert results[0] == results[1]


class _FixedSlotSession(PlayerSession):
    """Transmit exactly in one preassigned round (for engine tests)."""

    def __init__(self, slot: int) -> None:
        self._slot = slot
        self._round = 0
        self.observations: list[Observation] = []

    def decide(self) -> bool:
        self._round += 1
        return self._round == self._slot

    def observe(self, observation, *, transmitted):
        self.observations.append(observation)


class _FixedSlotProtocol(PlayerProtocol):
    name = "fixed-slot"
    requires_collision_detection = False
    advice_bits = 0

    def __init__(self, slots: dict[int, int]) -> None:
        self._slots = slots

    def session(self, player_id, n, advice, rng=None):
        return _FixedSlotSession(self._slots[player_id])


class TestRunPlayers:
    def test_solves_at_first_unique_slot(self, rng, nocd_channel):
        protocol = _FixedSlotProtocol({0: 2, 1: 2, 2: 3})
        result = run_players(
            protocol, frozenset({0, 1, 2}), 8, rng, channel=nocd_channel
        )
        # Round 1: nobody; round 2: players 0,1 collide; round 3: player 2.
        assert result.solved and result.rounds == 3

    def test_rejects_empty_participants(self, rng, nocd_channel):
        with pytest.raises(ValueError, match="non-empty"):
            run_players(
                _FixedSlotProtocol({}), frozenset(), 8, rng, channel=nocd_channel
            )

    def test_advice_budget_mismatch_rejected(self, rng, nocd_channel):
        protocol = _FixedSlotProtocol({0: 1})
        with pytest.raises(ProtocolError, match="advice"):
            run_players(
                protocol,
                frozenset({0}),
                8,
                rng,
                channel=nocd_channel,
                advice_function=MinIdPrefixAdvice(2),
            )

    def test_null_advice_default(self, rng, nocd_channel):
        protocol = _FixedSlotProtocol({0: 1})
        result = run_players(
            protocol,
            frozenset({0}),
            8,
            rng,
            channel=nocd_channel,
            advice_function=NullAdvice(),
        )
        assert result.solved and result.rounds == 1

    def test_budget_exhaustion(self, rng, nocd_channel):
        protocol = _FixedSlotProtocol({0: 5, 1: 5})
        result = run_players(
            protocol,
            frozenset({0, 1}),
            8,
            rng,
            channel=nocd_channel,
            max_rounds=3,
        )
        assert not result.solved
        assert result.rounds == 3

    def test_trace_probability_is_none(self, rng, nocd_channel):
        protocol = _FixedSlotProtocol({0: 1})
        result = run_players(
            protocol,
            frozenset({0}),
            8,
            rng,
            channel=nocd_channel,
            record_trace=True,
        )
        assert result.trace[0].probability is None


class TestExecutionResult:
    def test_rounds_or_penalty(self):
        solved = ExecutionResult(solved=True, rounds=5, max_rounds=10, k=3)
        unsolved = ExecutionResult(solved=False, rounds=10, max_rounds=10, k=3)
        assert solved.rounds_or(99) == 5
        assert unsolved.rounds_or(99) == 99
        assert unsolved.failed

    def test_invalid_rounds_rejected(self):
        with pytest.raises(ValueError):
            ExecutionResult(solved=True, rounds=0, max_rounds=10, k=3)
        with pytest.raises(ValueError):
            ExecutionResult(solved=False, rounds=-1, max_rounds=10, k=3)
