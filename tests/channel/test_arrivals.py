"""Tests for the non-i.i.d. arrival models."""

import numpy as np
import pytest

from repro.channel.arrivals import MarkovBurstArrivals, TraceArrivals


def model(**overrides) -> MarkovBurstArrivals:
    params = dict(
        devices=1000,
        calm_rate=0.002,
        burst_rate=0.3,
        burst_arrival=0.1,
        burst_departure=0.25,
    )
    params.update(overrides)
    return MarkovBurstArrivals(**params)


class TestMarkovBurstArrivals:
    def test_counts_stay_in_bounds(self):
        draws = model().sample_many(np.random.default_rng(0), 5000)
        assert draws.min() >= 2 and draws.max() <= 1000

    def test_deterministic_given_seed(self):
        a = model().sample_many(np.random.default_rng(42), 500)
        b = model().sample_many(np.random.default_rng(42), 500)
        assert (a == b).all()

    def test_regimes_produce_bimodal_load(self):
        draws = model().sample_many(np.random.default_rng(7), 20_000)
        # Calm draws cluster near 2 (0.002*1000 clamped up), burst draws
        # near 300; both regimes must actually occur.
        assert (draws < 30).any() and (draws > 200).any()

    def test_zero_switch_probabilities_pin_the_regime(self):
        calm_only = model(burst_arrival=0.0)
        draws = calm_only.sample_many(np.random.default_rng(1), 2000)
        assert (draws < 50).all()
        burst_only = model(start_in_burst=True, burst_departure=0.0)
        draws = burst_only.sample_many(np.random.default_rng(1), 2000)
        assert (draws > 200).all()

    def test_pinned_regime_persists_across_batches_and_scalar_calls(self):
        """A truncated fill must not flip the chain at batch boundaries."""
        calm_only = model(burst_arrival=0.0)
        rng = np.random.default_rng(2)
        first = calm_only.sample_many(rng, 100)
        second = calm_only.sample_many(rng, 100)
        scalars = [calm_only.sample(rng) for _ in range(20)]
        assert (first < 50).all() and (second < 50).all()
        assert max(scalars) < 50

    def test_sojourns_correlate_consecutive_trials(self):
        """Neighbouring trials share a regime far more often than chance."""
        draws = model(burst_arrival=0.02, burst_departure=0.05).sample_many(
            np.random.default_rng(3), 20_000
        )
        burst = draws > 150
        agree = (burst[1:] == burst[:-1]).mean()
        assert agree > 0.9  # i.i.d. sampling would sit near p^2 + (1-p)^2 < 0.9

    def test_scalar_sample_advances_the_chain(self):
        chain = model()
        rng = np.random.default_rng(5)
        draws = [chain.sample(rng) for _ in range(50)]
        assert min(draws) >= 2 and max(draws) <= 1000

    def test_reset_restores_initial_regime(self):
        chain = model(burst_arrival=1.0)  # switches to burst immediately
        chain.sample_many(np.random.default_rng(0), 10)
        chain.reset()
        assert chain.sample_many(np.random.default_rng(9), 1) is not None

    def test_validation(self):
        with pytest.raises(ValueError, match="devices"):
            model(devices=1)
        with pytest.raises(ValueError, match="burst_rate"):
            model(burst_rate=1.5)


class TestTraceArrivals:
    def test_replays_and_cycles(self):
        trace = TraceArrivals([3, 5, 7])
        rng = np.random.default_rng(0)
        assert list(trace.sample_many(rng, 5)) == [3, 5, 7, 3, 5]
        assert trace.sample(rng) == 7  # cursor continues

    def test_reset(self):
        trace = TraceArrivals([4, 6])
        rng = np.random.default_rng(0)
        trace.sample(rng)
        trace.reset()
        assert trace.sample(rng) == 4

    def test_n_is_trace_maximum(self):
        assert TraceArrivals([3, 9, 2]).n == 9

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            TraceArrivals([])
        with pytest.raises(ValueError, match=">= 1"):
            TraceArrivals([2, 0])


class TestStreamSemantics:
    """Stream-position contracts the open-system adapters depend on."""

    def test_trace_cursor_spans_chunked_sample_many(self):
        whole = TraceArrivals([2, 4, 6, 8, 10])
        chunked = TraceArrivals([2, 4, 6, 8, 10])
        rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(0)
        one_shot = whole.sample_many(rng_a, 9)
        parts = np.concatenate(
            [chunked.sample_many(rng_b, size) for size in (3, 1, 5)]
        )
        assert (one_shot == parts).all()

    def test_trace_reset_restores_the_stream_exactly(self):
        trace = TraceArrivals([5, 1, 9])
        rng = np.random.default_rng(0)
        first = trace.sample_many(rng, 7)
        trace.reset()
        again = trace.sample_many(rng, 7)
        assert (first == again).all()

    def test_markov_reset_restores_the_stream_exactly(self):
        chain = model(start_in_burst=True)
        first = chain.sample_many(np.random.default_rng(6), 200)
        chain.reset()
        again = chain.sample_many(np.random.default_rng(6), 200)
        assert (first == again).all()

    def test_markov_chunked_draws_match_one_shot_in_distribution(self):
        """Chunk boundaries redraw the (memoryless) regime sojourn, so
        chunked streams are not bitwise equal to one-shot draws - but the
        regime mix they produce must match in distribution."""
        one_shot = model().sample_many(np.random.default_rng(8), 40_000)
        chunked_chain = model()
        rng = np.random.default_rng(8)
        chunked = np.concatenate(
            [chunked_chain.sample_many(rng, 400) for _ in range(100)]
        )
        assert abs((one_shot > 150).mean() - (chunked > 150).mean()) < 0.05

    def test_fresh_instances_share_no_state(self):
        a, b = model(), model()
        a.sample_many(np.random.default_rng(0), 500)
        draws = b.sample_many(np.random.default_rng(0), 500)
        again = model().sample_many(np.random.default_rng(0), 500)
        assert (draws == again).all()
