"""Statistical validation of the channel engine's distributions.

The binomial fast path and the per-player engine must induce the exact
channel semantics; these tests compare empirical distributions against
closed forms with generous (5-sigma) tolerances so they stay stable in CI
while still catching real distributional bugs.
"""

import numpy as np
import pytest

from repro.channel.simulator import run_uniform
from repro.core.uniform import ProbabilitySchedule, ScheduleProtocol
from repro.lowerbounds.success_bounds import single_success_probability


def constant_protocol(p: float) -> ScheduleProtocol:
    return ScheduleProtocol(ProbabilitySchedule([p]), cycle=True)


class TestSolveTimeDistribution:
    @pytest.mark.parametrize("k,p", [(5, 0.2), (50, 0.02), (200, 0.004)])
    def test_geometric_tail(self, k, p, rng, nocd_channel):
        """P(T > r) = (1 - q)^r for the constant schedule."""
        q = single_success_probability(k, p)
        trials = 4000
        rounds = np.array(
            [
                run_uniform(
                    constant_protocol(p), k, rng, channel=nocd_channel,
                    max_rounds=10_000,
                ).rounds
                for _ in range(trials)
            ]
        )
        for r in (1, 3, 10):
            empirical = float(np.mean(rounds > r))
            expected = (1.0 - q) ** r
            sigma = np.sqrt(expected * (1 - expected) / trials)
            assert abs(empirical - expected) <= 5 * sigma + 1e-9

    def test_variance_matches_geometric(self, rng, nocd_channel):
        k, p = 20, 0.05
        q = single_success_probability(k, p)
        rounds = np.array(
            [
                run_uniform(
                    constant_protocol(p), k, rng, channel=nocd_channel,
                    max_rounds=10_000,
                ).rounds
                for _ in range(6000)
            ]
        )
        expected_variance = (1 - q) / (q * q)
        assert np.var(rounds) == pytest.approx(expected_variance, rel=0.15)

    def test_first_round_success_rate(self, rng, nocd_channel):
        k, p = 100, 0.01
        q = single_success_probability(k, p)
        trials = 8000
        successes = sum(
            run_uniform(
                constant_protocol(p), k, rng, channel=nocd_channel,
                max_rounds=1,
            ).solved
            for _ in range(trials)
        )
        sigma = np.sqrt(q * (1 - q) / trials)
        assert abs(successes / trials - q) <= 5 * sigma

    def test_independent_streams_differ(self, nocd_channel):
        """Different seeds give different executions (no hidden state)."""
        a = run_uniform(
            constant_protocol(0.05), 30, np.random.default_rng(1),
            channel=nocd_channel,
        ).rounds
        samples = {
            run_uniform(
                constant_protocol(0.05), 30, np.random.default_rng(seed),
                channel=nocd_channel,
            ).rounds
            for seed in range(2, 30)
        }
        assert len(samples | {a}) > 3
