"""Equivalence guards for the scenario-API experiment migrations.

Nine registry experiments (BASELINE-X, ADVICE-ROBUST, T2-RAND-CD,
T2-DET-NCD, T2-DET-CD, T1-NCD-UP, T1-CD-UP, KL-NCD, KL-CD) were
migrated from hand-wired estimator / simulator calls onto declarative
:class:`ScenarioSpec` points executed by ``run_scenario`` with the
experiment's shared generator.  The migration contract is *bit-identical
tables*: the scenario layer must resolve protocols, workloads, advice
and predictions into exactly the objects the old code built, and
consume the RNG stream in exactly the same order.  Each test here
replays the pre-migration wiring verbatim (same estimator calls, same
order, same shared generator) and compares against the migrated
experiment's measured rows.

These tests pin semantics, not just statistics: a refactor that changes
protocol construction order, RNG threading or workload resolution will
show up as an exact-value mismatch even when the statistics stay
plausible.
"""

import math

import numpy as np
import pytest

from repro.analysis.montecarlo import (
    estimate_player_rounds,
    estimate_uniform_rounds,
)
from repro.channel.channel import (
    with_collision_detection,
    without_collision_detection,
)
from repro.channel.network import RandomAdversary
from repro.channel.simulator import run_players
from repro.core.advice import MinIdPrefixAdvice
from repro.core.faulty_advice import BitFlipAdvice
from repro.core.predictions import Prediction
from repro.experiments import (
    crossover,
    divergence,
    robustness,
    table1_cd,
    table1_nocd,
    table2,
)
from repro.experiments.base import ExperimentConfig
from repro.experiments.table1_cd import BUDGET_CONSTANT
from repro.experiments.table1_nocd import entropy_sweep_distributions
from repro.experiments.table2 import _advice_sweep, _worst_block_sizes
from repro.infotheory.condense import num_ranges
from repro.infotheory.distributions import SizeDistribution
from repro.infotheory.perturb import (
    divergence_between,
    floor_support,
    mix_with_uniform,
    shift_ranges,
)
from repro.lowerbounds.bounds import table1_nocd_upper
from repro.protocols.advice_deterministic import (
    DeterministicScanProtocol,
    DeterministicTreeDescentProtocol,
)
from repro.protocols.advice_randomized import (
    block_index_for,
    truncated_willard_protocol,
)
from repro.protocols.adapters import UniformAsPlayerProtocol
from repro.protocols.code_search import CodeSearchProtocol
from repro.protocols.decay import DecayProtocol
from repro.protocols.restart import FallbackPlayerProtocol
from repro.protocols.sorted_probing import SortedProbingProtocol
from repro.protocols.willard import WillardProtocol

CONFIG = ExperimentConfig(n=2**10, trials=120, seed=13, quick=True)


def test_crossover_rows_match_direct_estimator_wiring():
    rng = CONFIG.rng()
    nocd, cd = without_collision_detection(), with_collision_detection()
    trials = CONFIG.effective_trials()
    budget = 64 * num_ranges(CONFIG.n)
    expected_rows = []
    for distribution in entropy_sweep_distributions(CONFIG.n, quick=True):
        entropy_bits = distribution.condensed_entropy()
        prediction = Prediction(distribution)
        means = []
        for protocol, channel in (
            (
                SortedProbingProtocol(prediction, one_shot=False, support_only=True),
                nocd,
            ),
            (DecayProtocol(CONFIG.n), nocd),
            (
                CodeSearchProtocol(prediction, one_shot=False, support_only=True),
                cd,
            ),
            (WillardProtocol(CONFIG.n), cd),
        ):
            means.append(
                estimate_uniform_rounds(
                    protocol,
                    distribution,
                    rng,
                    channel=channel,
                    trials=trials,
                    max_rounds=budget,
                    batch=CONFIG.batch_mode(),
                ).rounds.mean
            )
        sorted_rounds, decay_rounds, code_rounds, willard_rounds = means
        expected_rows.append(
            [
                entropy_bits,
                sorted_rounds,
                decay_rounds,
                decay_rounds / sorted_rounds,
                code_rounds,
                willard_rounds,
                willard_rounds / code_rounds,
            ]
        )
    assert crossover.run(CONFIG).rows == expected_rows


def test_t1_nocd_upper_rows_match_direct_estimator_wiring():
    rng = CONFIG.rng()
    channel = without_collision_detection()
    trials = CONFIG.effective_trials()
    measured = []
    for distribution in entropy_sweep_distributions(CONFIG.n, quick=True):
        entropy_bits = distribution.condensed_entropy()
        budget = max(1, math.ceil(table1_nocd_upper(entropy_bits)))
        estimate = estimate_uniform_rounds(
            SortedProbingProtocol(Prediction(distribution), one_shot=True),
            distribution,
            rng,
            channel=channel,
            trials=trials,
            max_rounds=budget,
            batch=CONFIG.batch_mode(),
        )
        measured.append(
            (estimate.success.rate, estimate.success.lower, estimate.rounds.mean)
        )
    rows = table1_nocd.run_upper(CONFIG).rows
    assert [(row[3], row[4], row[5]) for row in rows] == measured


def test_t1_cd_upper_rows_match_direct_estimator_wiring():
    rng = CONFIG.rng()
    channel = with_collision_detection()
    trials = CONFIG.effective_trials()
    repetitions = 3
    measured = []
    for distribution in entropy_sweep_distributions(CONFIG.n, quick=True):
        entropy_bits = distribution.condensed_entropy()
        budget = table1_cd.cd_budget(entropy_bits, repetitions)
        estimate = estimate_uniform_rounds(
            CodeSearchProtocol(
                Prediction(distribution), repetitions=repetitions, one_shot=True
            ),
            distribution,
            rng,
            channel=channel,
            trials=trials,
            max_rounds=budget,
            batch=CONFIG.batch_mode(),
        )
        measured.append(
            (estimate.success.rate, estimate.success.lower, estimate.rounds.mean)
        )
    rows = table1_cd.run_upper(CONFIG).rows
    assert [(row[3], row[4], row[5]) for row in rows] == measured


def test_t2_rand_cd_rows_match_direct_estimator_wiring():
    n = CONFIG.n
    rng = CONFIG.rng()
    channel = with_collision_detection()
    trials = CONFIG.effective_trials()
    repetitions = 3
    max_b = max(1, math.ceil(math.log2(num_ranges(n))))
    expected_worsts = []
    for b in _advice_sweep(max_b, quick=True):
        worst = 0.0
        for k in _worst_block_sizes(n, b):
            protocol = truncated_willard_protocol(
                n, b, block_index_for(n, b, k), repetitions=repetitions, restart=True
            )
            estimate = estimate_uniform_rounds(
                protocol,
                k,
                rng,
                channel=channel,
                trials=trials,
                max_rounds=1024,
                batch=CONFIG.batch_mode(),
            )
            worst = max(
                worst,
                estimate.rounds.mean if estimate.any_successes else math.inf,
            )
        expected_worsts.append(worst)
    rows = table2.run_rand_cd(CONFIG).rows
    assert [row[1] for row in rows] == expected_worsts


def test_robustness_rows_match_direct_estimator_wiring():
    rng = CONFIG.rng()
    n = min(CONFIG.n, 2**10)
    b, k = 4, 6
    trials = max(150, CONFIG.effective_trials() // 4)
    adversary = RandomAdversary()
    expected_rows = []
    for label, primary, fallback_protocol, channel in (
        (
            "scan",
            DeterministicScanProtocol(b),
            UniformAsPlayerProtocol(DecayProtocol(n)),
            without_collision_detection(),
        ),
        (
            "descent",
            DeterministicTreeDescentProtocol(b),
            UniformAsPlayerProtocol(WillardProtocol(n)),
            with_collision_detection(),
        ),
    ):
        budget = primary.worst_case_rounds(n)
        fallback = FallbackPlayerProtocol(primary, fallback_protocol, budget)
        for flip in (0.0, 0.25):
            advice = BitFlipAdvice(MinIdPrefixAdvice(b), flip, rng)

            def draw(generator):
                return adversary.checked_select(n, k, generator)

            bare = estimate_player_rounds(
                primary, draw, n, rng,
                channel=channel, advice_function=advice,
                trials=trials, max_rounds=budget, batch=CONFIG.batch_mode(),
            )
            repaired = estimate_player_rounds(
                fallback, draw, n, rng,
                channel=channel, advice_function=advice,
                trials=trials, max_rounds=100 * budget, batch=CONFIG.batch_mode(),
            )
            expected_rows.append(
                [
                    label,
                    flip,
                    1.0 - bare.success.rate,
                    repaired.success.rate,
                    repaired.rounds.mean,
                    budget,
                ]
            )
    assert robustness.run(CONFIG).rows == expected_rows


def test_ssf_reduction_executions_match_direct_player_wiring():
    """The SSF budget-certification rows (the experiment's only protocol
    executions outside the reduction compiler) replay their direct
    ``run_players`` wiring: one worst-case suffix-adversary execution per
    deterministic protocol at the reduction's n=16, b=2."""
    from repro.experiments import ssf

    n_red, b = 16, 2
    rng = CONFIG.rng()
    expected = {}
    for label, protocol, channel in (
        ("deterministic-scan", DeterministicScanProtocol(b), without_collision_detection()),
        ("tree-descent", DeterministicTreeDescentProtocol(b), with_collision_detection()),
    ):
        result = run_players(
            protocol,
            frozenset({n_red - 2, n_red - 1}),  # the suffix adversary's pick
            n_red,
            rng,
            channel=channel,
            advice_function=MinIdPrefixAdvice(b),
            max_rounds=protocol.worst_case_rounds(n_red) + 1,
        )
        assert result.solved
        expected[f"{label}-exec(b={b})"] = f"{result.rounds} rounds"

    measured = {
        row[0]: row[3]
        for row in ssf.run(CONFIG).rows
        if str(row[0]).endswith(f"-exec(b={b})")
    }
    assert measured == expected


def test_t2_det_rows_match_direct_player_executions():
    """Both deterministic Table-2 cells replay their pre-migration
    run_players wiring: a single worst-case execution on {n-2, n-1}."""
    for runner, make_protocol, channel, cap in (
        (
            table2.run_det_nocd,
            DeterministicScanProtocol,
            without_collision_detection(),
            min(CONFIG.n, 2**12),
        ),
        (
            table2.run_det_cd,
            DeterministicTreeDescentProtocol,
            with_collision_detection(),
            CONFIG.n,
        ),
    ):
        n = cap
        rng = CONFIG.rng()
        expected = []
        for b in _advice_sweep(
            max(1, math.ceil(math.log2(n))), quick=True
        ):
            protocol = make_protocol(b)
            result = run_players(
                protocol,
                frozenset({n - 2, n - 1}),
                n,
                rng,
                channel=channel,
                advice_function=MinIdPrefixAdvice(b),
                max_rounds=protocol.worst_case_rounds(n) + 1,
            )
            expected.append((b, result.rounds, result.solved))
        rows = runner(CONFIG).rows
        assert [(row[0], row[1], row[4]) for row in rows] == expected


def _divergence_ladder_direct(n: int):
    """The pre-migration prediction ladder, built with perturb calls."""
    truth = SizeDistribution.range_uniform_subset(
        n, divergence.truth_params(n)["ranges"], name="truth-H2"
    )
    rungs = [
        ("perfect", truth),
        ("mix 10%", mix_with_uniform(truth, 0.10)),
        ("mix 50%", mix_with_uniform(truth, 0.50)),
    ]
    for delta in (1, 3):  # the quick-mode shifts
        rungs.append(
            (f"shift +{delta}", floor_support(shift_ranges(truth, delta), 2e-2))
        )
    graded = [
        (label, prediction, divergence_between(truth, prediction))
        for label, prediction in rungs
    ]
    graded.sort(key=lambda item: item[2])
    return truth, graded


def test_kl_nocd_rows_match_direct_estimator_wiring():
    rng = CONFIG.rng()
    channel = without_collision_detection()
    trials = CONFIG.effective_trials()
    truth, ladder = _divergence_ladder_direct(CONFIG.n)
    entropy_bits = truth.condensed_entropy()
    measured = []
    for label, prediction, div in ladder:
        budget = max(1, math.ceil(table1_nocd_upper(entropy_bits, div)))
        estimate = estimate_uniform_rounds(
            SortedProbingProtocol(Prediction(prediction), one_shot=True),
            truth,
            rng,
            channel=channel,
            trials=trials,
            max_rounds=budget,
            batch=CONFIG.batch_mode(),
        )
        measured.append(
            (label, div, budget, estimate.success.rate, estimate.rounds.mean)
        )
    rows = divergence.run_nocd(CONFIG).rows
    assert [(r[0], r[1], r[2], r[3], r[5]) for r in rows] == measured


def test_kl_cd_rows_match_direct_estimator_wiring():
    rng = CONFIG.rng()
    channel = with_collision_detection()
    trials = CONFIG.effective_trials()
    repetitions = 3
    truth, ladder = _divergence_ladder_direct(CONFIG.n)
    entropy_bits = truth.condensed_entropy()
    measured = []
    for label, prediction, div in ladder:
        base = entropy_bits + div + 1.0
        budget = max(1, math.ceil(BUDGET_CONSTANT * repetitions * base * base))
        estimate = estimate_uniform_rounds(
            CodeSearchProtocol(
                Prediction(prediction), repetitions=repetitions, one_shot=True
            ),
            truth,
            rng,
            channel=channel,
            trials=trials,
            max_rounds=budget,
            batch=CONFIG.batch_mode(),
        )
        measured.append(
            (label, div, budget, estimate.success.rate, estimate.rounds.mean)
        )
    rows = divergence.run_cd(CONFIG).rows
    assert [(r[0], r[1], r[2], r[3], r[5]) for r in rows] == measured


def test_batch_and_scalar_substrates_both_reproduce():
    """The migration preserves the --no-batch escape hatch end to end."""
    scalar_config = ExperimentConfig(n=2**10, trials=60, seed=13, quick=True, batch=False)
    result = crossover.run(scalar_config)
    assert len(result.rows) == len(
        entropy_sweep_distributions(scalar_config.n, quick=True)
    )


def test_migrated_experiments_stay_deterministic():
    for run in (
        crossover.run,
        table2.run_rand_cd,
        table2.run_det_cd,
        divergence.run_nocd,
    ):
        assert run(CONFIG).rows == run(CONFIG).rows
