"""Tests for the experiment infrastructure and quick-scale experiment runs.

The heavyweight entropy sweeps run at tiny scale here (small n, few
trials); the full-scale numbers live in the benchmark suite and
EXPERIMENTS.md.
"""

import pytest

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_ids,
    get_experiment,
    run_experiment,
)


QUICK = ExperimentConfig(n=2**10, trials=250, seed=7, quick=True)


class TestExperimentConfig:
    def test_rng_reproducible(self):
        config = ExperimentConfig(seed=5)
        assert config.rng().integers(1000) == config.rng().integers(1000)

    def test_effective_trials(self):
        assert ExperimentConfig(trials=5000, quick=True).effective_trials() == 400
        assert ExperimentConfig(trials=5000, quick=False).effective_trials() == 5000
        assert ExperimentConfig(trials=100, quick=True).effective_trials() == 100


class TestExperimentResult:
    def _result(self, checks) -> ExperimentResult:
        return ExperimentResult(
            experiment_id="X",
            title="t",
            reference="r",
            headers=["a"],
            rows=[[1]],
            checks=checks,
        )

    def test_all_checks_pass(self):
        assert self._result({"c1": True, "c2": True}).all_checks_pass()
        assert not self._result({"c1": True, "c2": False}).all_checks_pass()

    def test_failed_checks(self):
        result = self._result({"good": True, "bad": False})
        assert result.failed_checks() == ["bad"]

    def test_render_contains_everything(self):
        result = self._result({"claim": True})
        result.notes.append("a note")
        text = result.render()
        assert "X" in text and "[PASS] claim" in text and "a note" in text

    def test_to_csv(self):
        assert self._result({}).to_csv().splitlines()[0] == "a"


class TestRegistry:
    def test_all_design_md_ids_present(self):
        expected = {
            "T1-NCD-UP", "T1-NCD-LOW", "T1-CD-UP", "T1-CD-LOW",
            "T2-DET-NCD", "T2-DET-CD", "T2-RAND-NCD", "T2-RAND-CD",
            "KL-NCD", "KL-CD", "SRC-CODE", "PLIAM", "LEMMA-PROBS",
            "BASELINE-X", "SSF", "LEARN", "ADVICE-ROBUST", "JAM-ROBUST",
            "ADAPT-ROBUST",
        }
        assert set(experiment_ids()) == expected

    def test_get_unknown_raises_with_options(self):
        with pytest.raises(KeyError, match="known ids"):
            get_experiment("NOPE")

    def test_descriptions_non_empty(self):
        for _, description in EXPERIMENTS.values():
            assert description


@pytest.mark.parametrize("experiment_id", experiment_ids())
def test_experiment_runs_and_passes_at_tiny_scale(experiment_id):
    """Every registered experiment runs green at reduced scale.

    This is the integration backbone: each run exercises protocols,
    simulator, information theory and the check logic end to end.
    """
    result = run_experiment(experiment_id, QUICK)
    assert result.experiment_id == experiment_id
    assert result.rows, "experiment produced no measurements"
    assert result.headers
    for row in result.rows:
        assert len(row) == len(result.headers)
    assert result.all_checks_pass(), result.failed_checks()


def test_experiments_deterministic_given_seed():
    """Same config => identical measurement tables."""
    first = run_experiment("SRC-CODE", QUICK)
    second = run_experiment("SRC-CODE", QUICK)
    assert first.rows == second.rows
