"""Unit tests for repro.infotheory.huffman."""

import itertools
import math

import pytest

from repro.infotheory.coding import kraft_lengths_realizable
from repro.infotheory.condense import CondensedDistribution
from repro.infotheory.entropy import entropy
from repro.infotheory.huffman import (
    huffman_code,
    huffman_code_lengths,
    optimal_code_for,
)


def brute_force_optimal_length(pmf: list[float], max_len: int = 6) -> float:
    """Minimal expected length over all Kraft-feasible length profiles."""
    best = math.inf
    m = len(pmf)
    for profile in itertools.product(range(1, max_len + 1), repeat=m):
        if not kraft_lengths_realizable(profile):
            continue
        expected = sum(p * length for p, length in zip(pmf, profile))
        best = min(best, expected)
    return best


class TestHuffmanLengths:
    def test_dyadic_exact(self):
        assert sorted(huffman_code_lengths([0.5, 0.25, 0.25])) == [1, 2, 2]

    def test_uniform_power_of_two(self):
        lengths = huffman_code_lengths([0.25] * 4)
        assert lengths == [2, 2, 2, 2]

    def test_single_symbol(self):
        assert huffman_code_lengths([1.0]) == [1]

    def test_two_symbols(self):
        assert huffman_code_lengths([0.9, 0.1]) == [1, 1]

    def test_kraft_feasible_always(self):
        pmf = [0.05, 0.1, 0.15, 0.2, 0.5]
        assert kraft_lengths_realizable(huffman_code_lengths(pmf))

    @pytest.mark.parametrize(
        "pmf",
        [
            [0.4, 0.3, 0.2, 0.1],
            [0.6, 0.2, 0.1, 0.1],
            [0.25, 0.25, 0.25, 0.25],
            [0.7, 0.1, 0.1, 0.05, 0.05],
        ],
    )
    def test_optimal_vs_brute_force(self, pmf):
        lengths = huffman_code_lengths(pmf)
        huffman_expected = sum(p * length for p, length in zip(pmf, lengths))
        assert huffman_expected == pytest.approx(
            brute_force_optimal_length(pmf)
        )

    def test_deterministic_across_runs(self):
        pmf = [0.2, 0.2, 0.2, 0.2, 0.2]
        assert huffman_code_lengths(pmf) == huffman_code_lengths(pmf)

    def test_entropy_sandwich(self):
        pmf = [0.4, 0.25, 0.2, 0.1, 0.05]
        lengths = huffman_code_lengths(pmf)
        expected = sum(p * length for p, length in zip(pmf, lengths))
        h = entropy(pmf)
        assert h <= expected + 1e-12
        assert expected < h + 1.0


class TestHuffmanCode:
    def test_roundtrip(self):
        code = huffman_code([0.5, 0.2, 0.2, 0.1])
        symbols = [0, 1, 2, 3, 0, 0, 2]
        assert code.decode(code.encode_sequence(symbols)) == symbols

    def test_more_likely_never_longer(self):
        pmf = [0.5, 0.2, 0.2, 0.1]
        code = huffman_code(pmf)
        for a in range(len(pmf)):
            for b in range(len(pmf)):
                if pmf[a] > pmf[b]:
                    assert code.length(a) <= code.length(b)


class TestOptimalCodeFor:
    def test_covers_all_ranges_even_zero_mass(self):
        condensed = CondensedDistribution.point(2**8, 3)
        code = optimal_code_for(condensed)
        assert code.num_symbols == 8
        # Every range decodes, including predicted-impossible ones.
        for symbol in range(8):
            assert code.decode(code.encode(symbol)) == [symbol]

    def test_zero_mass_symbols_get_long_codes(self):
        condensed = CondensedDistribution.point(2**8, 3)
        code = optimal_code_for(condensed)
        target_length = code.length(2)  # range 3 is symbol index 2
        for symbol in range(8):
            if symbol != 2:
                assert code.length(symbol) >= target_length

    def test_uniform_balanced(self):
        condensed = CondensedDistribution.uniform(2**8)
        code = optimal_code_for(condensed)
        assert set(code.lengths()) == {3}
