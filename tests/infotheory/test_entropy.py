"""Unit tests for repro.infotheory.entropy."""

import math

import pytest

from repro.infotheory.entropy import (
    cross_entropy,
    entropy,
    guesswork,
    is_pmf,
    kl_divergence,
    max_entropy,
    min_entropy,
    normalize,
    renyi_entropy,
    total_variation,
    validate_pmf,
)


class TestValidatePmf:
    def test_accepts_valid_pmf(self):
        validate_pmf([0.5, 0.25, 0.25])

    def test_accepts_with_zero_atoms(self):
        validate_pmf([0.0, 1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            validate_pmf([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            validate_pmf([0.5, -0.1, 0.6])

    def test_rejects_bad_total(self):
        with pytest.raises(ValueError, match="sum"):
            validate_pmf([0.5, 0.4])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            validate_pmf([float("nan"), 1.0])

    def test_is_pmf_boolean_form(self):
        assert is_pmf([1.0])
        assert not is_pmf([0.9])


class TestNormalize:
    def test_normalizes_weights(self):
        assert normalize([2.0, 2.0]) == [0.5, 0.5]

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError, match="zero"):
            normalize([0.0, 0.0])

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError, match="negative"):
            normalize([1.0, -1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            normalize([])


class TestEntropy:
    def test_point_mass_is_zero(self):
        assert entropy([1.0]) == 0.0
        assert entropy([0.0, 1.0, 0.0]) == 0.0

    def test_uniform_is_log_n(self):
        assert entropy([0.25] * 4) == pytest.approx(2.0)
        assert entropy([1 / 8] * 8) == pytest.approx(3.0)

    def test_dyadic(self):
        assert entropy([0.5, 0.25, 0.25]) == pytest.approx(1.5)

    def test_max_entropy_helper(self):
        assert max_entropy(16) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            max_entropy(0)

    def test_bounded_by_max_entropy(self):
        pmf = [0.4, 0.3, 0.2, 0.1]
        assert entropy(pmf) <= max_entropy(4)


class TestKLDivergence:
    def test_self_divergence_zero(self):
        pmf = [0.5, 0.3, 0.2]
        assert kl_divergence(pmf, pmf) == 0.0

    def test_nonnegative(self):
        assert kl_divergence([0.9, 0.1], [0.5, 0.5]) > 0.0

    def test_known_value(self):
        # D([1,0] || [.5,.5]) = log2(2) = 1.
        assert kl_divergence([1.0, 0.0], [0.5, 0.5]) == pytest.approx(1.0)

    def test_infinite_when_support_missing(self):
        assert kl_divergence([0.5, 0.5], [1.0, 0.0]) == math.inf

    def test_mismatched_supports_rejected(self):
        with pytest.raises(ValueError, match="supports"):
            kl_divergence([1.0], [0.5, 0.5])

    def test_cross_entropy_decomposition(self):
        p = [0.5, 0.25, 0.25]
        q = [0.25, 0.5, 0.25]
        assert cross_entropy(p, q) == pytest.approx(
            entropy(p) + kl_divergence(p, q)
        )


class TestOtherFunctionals:
    def test_total_variation_symmetric(self):
        p, q = [0.7, 0.3], [0.3, 0.7]
        assert total_variation(p, q) == pytest.approx(0.4)
        assert total_variation(q, p) == pytest.approx(0.4)

    def test_total_variation_zero_iff_equal(self):
        assert total_variation([0.5, 0.5], [0.5, 0.5]) == 0.0

    def test_pinsker_inequality(self):
        # TV <= sqrt(D_KL(ln 2) / 2): a classical consistency check.
        p, q = [0.8, 0.2], [0.4, 0.6]
        tv = total_variation(p, q)
        kl_nats = kl_divergence(p, q) * math.log(2)
        assert tv <= math.sqrt(kl_nats / 2.0) + 1e-12

    def test_renyi_limits(self):
        pmf = [0.5, 0.25, 0.25]
        assert renyi_entropy(pmf, 1.0) == pytest.approx(entropy(pmf))
        assert renyi_entropy(pmf, float("inf")) == pytest.approx(
            min_entropy(pmf)
        )
        assert renyi_entropy(pmf, 0.0) == pytest.approx(math.log2(3))

    def test_renyi_monotone_in_order(self):
        pmf = [0.6, 0.3, 0.1]
        orders = [0.0, 0.5, 1.0, 2.0, float("inf")]
        values = [renyi_entropy(pmf, order) for order in orders]
        assert values == sorted(values, reverse=True)

    def test_min_entropy(self):
        assert min_entropy([0.5, 0.5]) == pytest.approx(1.0)

    def test_guesswork_uniform(self):
        # Uniform over m: expected guesses (m+1)/2.
        assert guesswork([0.25] * 4) == pytest.approx(2.5)

    def test_guesswork_point(self):
        assert guesswork([0.0, 1.0, 0.0]) == pytest.approx(1.0)

    def test_guesswork_orders_descending(self):
        # Mass 0.9 found first regardless of its index.
        assert guesswork([0.05, 0.9, 0.05]) == pytest.approx(
            0.9 * 1 + 0.05 * 2 + 0.05 * 3
        )
