"""Unit tests for repro.infotheory.condense."""

import math

import numpy as np
import pytest

from repro.infotheory.condense import (
    MIN_NETWORK_SIZE,
    CondensedDistribution,
    num_ranges,
    range_interval,
    range_of_size,
    range_probability,
    representative_size,
)


class TestRangeArithmetic:
    def test_num_ranges_powers_of_two(self):
        assert num_ranges(2) == 1
        assert num_ranges(4) == 2
        assert num_ranges(2**16) == 16

    def test_num_ranges_non_powers(self):
        assert num_ranges(3) == 2
        assert num_ranges(1000) == 10

    def test_num_ranges_rejects_small(self):
        with pytest.raises(ValueError):
            num_ranges(1)

    def test_range_of_size_paper_examples(self):
        # Paper: i=1 is just {2}, i=2 is 3..4, i=3 is 5..8.
        assert range_of_size(2) == 1
        assert range_of_size(3) == 2
        assert range_of_size(4) == 2
        assert range_of_size(5) == 3
        assert range_of_size(8) == 3
        assert range_of_size(9) == 4

    def test_range_of_size_is_ceil_log2(self):
        for k in range(2, 500):
            assert range_of_size(k) == math.ceil(math.log2(k))

    def test_range_of_size_rejects_below_min(self):
        with pytest.raises(ValueError):
            range_of_size(1)

    def test_range_interval_consistency(self):
        for i in range(1, 12):
            low, high = range_interval(i)
            for k in range(low, high + 1):
                assert range_of_size(k) == i

    def test_range_interval_clipped_by_n(self):
        low, high = range_interval(10, n=1000)
        assert (low, high) == (513, 1000)

    def test_range_interval_out_of_bounds(self):
        with pytest.raises(ValueError):
            range_interval(11, n=1000)

    def test_representative_size_in_range(self):
        for i in range(1, 12):
            assert range_of_size(representative_size(i)) == i

    def test_range_probability(self):
        assert range_probability(1) == 0.5
        assert range_probability(10) == 2.0**-10
        with pytest.raises(ValueError):
            range_probability(0)

    def test_ranges_partition_sizes(self):
        """Every size 2..n belongs to exactly one range of L(n)."""
        n = 300
        count = num_ranges(n)
        seen = {}
        for i in range(1, count + 1):
            low, high = range_interval(i, n=n)
            for k in range(low, high + 1):
                assert k not in seen
                seen[k] = i
        assert sorted(seen) == list(range(MIN_NETWORK_SIZE, n + 1))


class TestCondensedDistribution:
    def test_from_size_pmf_aggregates(self):
        n = 16
        pmf = [0.0] * (n + 1)
        pmf[2] = 0.5  # range 1
        pmf[3] = 0.25  # range 2
        pmf[4] = 0.25  # range 2
        condensed = CondensedDistribution.from_size_pmf(n, pmf)
        assert condensed.probability(1) == pytest.approx(0.5)
        assert condensed.probability(2) == pytest.approx(0.5)
        assert condensed.probability(3) == 0.0

    def test_from_size_pmf_rejects_low_sizes(self):
        pmf = [0.5, 0.5, 0.0, 0.0, 0.0]
        with pytest.raises(ValueError, match="zero probability"):
            CondensedDistribution.from_size_pmf(4, pmf)

    def test_from_size_pmf_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="length"):
            CondensedDistribution.from_size_pmf(4, [0.0, 0.0, 1.0])

    def test_from_size_pmf_rejects_negative_masses(self):
        """A negative entry must not net out against positives that land
        in the same range and slip past the sum-to-one check."""
        with pytest.raises(ValueError, match="invalid probability"):
            CondensedDistribution.from_size_pmf(
                4, [0.0, 0.0, 0.5, 0.75, -0.25]
            )
        with pytest.raises(ValueError, match="invalid probability"):
            CondensedDistribution.from_size_pmf(
                4, [0.0, 0.0, 0.5, 0.5, float("nan")]
            )

    def test_uniform_entropy(self):
        condensed = CondensedDistribution.uniform(2**16)
        assert condensed.entropy() == pytest.approx(4.0)

    def test_point_entropy_zero(self):
        condensed = CondensedDistribution.point(2**16, 7)
        assert condensed.entropy() == pytest.approx(0.0, abs=1e-12)

    def test_point_rejects_bad_range(self):
        with pytest.raises(ValueError):
            CondensedDistribution.point(16, 5)

    def test_kl_divergence_zero_on_self(self):
        condensed = CondensedDistribution.uniform(256)
        assert condensed.kl_divergence(condensed) == 0.0

    def test_kl_divergence_requires_same_n(self):
        a = CondensedDistribution.uniform(256)
        b = CondensedDistribution.uniform(512)
        with pytest.raises(ValueError, match="different n"):
            a.kl_divergence(b)

    def test_sorted_ranges_most_likely_first(self):
        condensed = CondensedDistribution(
            n=16, q=(0.1, 0.6, 0.1, 0.2)
        )
        assert condensed.sorted_ranges() == [2, 4, 1, 3]

    def test_sorted_ranges_tie_break_ascending(self):
        condensed = CondensedDistribution.uniform(16)
        assert condensed.sorted_ranges() == [1, 2, 3, 4]

    def test_support(self):
        condensed = CondensedDistribution(n=16, q=(0.0, 0.5, 0.0, 0.5))
        assert condensed.support() == [2, 4]

    def test_sample_range_respects_support(self, rng: np.random.Generator):
        condensed = CondensedDistribution(n=16, q=(0.0, 0.5, 0.0, 0.5))
        draws = {condensed.sample_range(rng) for _ in range(200)}
        assert draws <= {2, 4}
        assert draws == {2, 4}

    def test_almost_equal(self):
        a = CondensedDistribution.uniform(256)
        b = CondensedDistribution(n=256, q=tuple([1 / 8 + 1e-12] * 4 + [1 / 8 - 1e-12] * 4))
        assert a.almost_equal(b, tolerance=1e-9)
        assert not a.almost_equal(CondensedDistribution.point(256, 1))

    def test_wrong_probability_count_rejected(self):
        with pytest.raises(ValueError, match="range probabilities"):
            CondensedDistribution(n=256, q=(1.0,))

    def test_probability_bounds_checked(self):
        condensed = CondensedDistribution.uniform(256)
        with pytest.raises(ValueError):
            condensed.probability(0)
        with pytest.raises(ValueError):
            condensed.probability(9)
