"""Unit tests for repro.infotheory.coding (prefix codes, Kraft)."""

import pytest

from repro.infotheory.coding import (
    CodewordError,
    PrefixCode,
    code_from_lengths,
    kraft_lengths_realizable,
    kraft_sum,
    shannon_code_lengths,
)


class TestKraft:
    def test_kraft_sum(self):
        assert kraft_sum([1, 2, 2]) == pytest.approx(1.0)
        assert kraft_sum([1, 1]) == pytest.approx(1.0)
        assert kraft_sum([2, 2, 2]) == pytest.approx(0.75)

    def test_realizable(self):
        assert kraft_lengths_realizable([1, 2, 2])
        assert kraft_lengths_realizable([3] * 8)
        assert not kraft_lengths_realizable([1, 1, 2])

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            kraft_sum([-1])


class TestShannonLengths:
    def test_dyadic_exact(self):
        assert shannon_code_lengths([0.5, 0.25, 0.25]) == [1, 2, 2]

    def test_non_dyadic_ceils(self):
        lengths = shannon_code_lengths([0.4, 0.35, 0.25])
        assert lengths == [2, 2, 2]

    def test_always_kraft_feasible(self):
        pmf = [0.4, 0.3, 0.2, 0.05, 0.05]
        assert kraft_lengths_realizable(shannon_code_lengths(pmf))

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError, match="positive mass"):
            shannon_code_lengths([1.0, 0.0])


class TestPrefixCode:
    def test_valid_code(self):
        code = PrefixCode(codewords=("0", "10", "11"))
        assert code.num_symbols == 3
        assert code.lengths() == [1, 2, 2]
        assert code.max_length() == 2

    def test_rejects_prefix_violation(self):
        with pytest.raises(CodewordError, match="prefix"):
            PrefixCode(codewords=("0", "01"))

    def test_rejects_duplicates(self):
        with pytest.raises(CodewordError, match="duplicate"):
            PrefixCode(codewords=("0", "0"))

    def test_rejects_non_bits(self):
        with pytest.raises(CodewordError, match="non-bits"):
            PrefixCode(codewords=("0", "2"))

    def test_rejects_empty_word_in_multi(self):
        with pytest.raises(CodewordError, match="empty"):
            PrefixCode(codewords=("", "1"))

    def test_single_symbol_empty_word_allowed(self):
        code = PrefixCode(codewords=("",))
        assert code.length(0) == 0

    def test_encode_decode_roundtrip(self):
        code = PrefixCode(codewords=("0", "10", "110", "111"))
        symbols = [0, 3, 1, 2, 2, 0, 1]
        assert code.decode(code.encode_sequence(symbols)) == symbols

    def test_decode_rejects_dangling_bits(self):
        code = PrefixCode(codewords=("0", "10", "11"))
        with pytest.raises(CodewordError, match="dangling"):
            code.decode("01")

    def test_decode_rejects_invalid_bit(self):
        code = PrefixCode(codewords=("0", "1"))
        with pytest.raises(CodewordError, match="invalid bit"):
            code.decode("0x")

    def test_encode_unknown_symbol(self):
        code = PrefixCode(codewords=("0", "1"))
        with pytest.raises(CodewordError, match="out of range"):
            code.encode(2)

    def test_expected_length(self):
        code = PrefixCode(codewords=("0", "10", "11"))
        assert code.expected_length([0.5, 0.25, 0.25]) == pytest.approx(1.5)

    def test_expected_length_size_mismatch(self):
        code = PrefixCode(codewords=("0", "1"))
        with pytest.raises(ValueError, match="symbols"):
            code.expected_length([1.0])

    def test_is_complete(self):
        assert PrefixCode(codewords=("0", "10", "11")).is_complete()
        assert not PrefixCode(codewords=("00", "10", "11")).is_complete()

    def test_symbols_by_length(self):
        code = PrefixCode(codewords=("10", "0", "110", "111"))
        assert code.symbols_by_length() == {1: [1], 2: [0], 3: [2, 3]}


class TestCodeFromLengths:
    def test_canonical_dyadic(self):
        code = code_from_lengths([1, 2, 2])
        assert sorted(code.codewords) == ["0", "10", "11"]

    def test_respects_requested_lengths(self):
        lengths = [3, 1, 3, 2]
        code = code_from_lengths(lengths)
        assert code.lengths() == lengths

    def test_rejects_infeasible(self):
        with pytest.raises(ValueError, match="Kraft"):
            code_from_lengths([1, 1, 1])

    def test_single_symbol(self):
        assert code_from_lengths([0]).codewords == ("",)
        assert code_from_lengths([3]).codewords == ("000",)

    def test_rejects_zero_length_in_multi(self):
        with pytest.raises(ValueError, match="positive"):
            code_from_lengths([0, 1])

    def test_rejects_empty_profile(self):
        with pytest.raises(ValueError, match="non-empty"):
            code_from_lengths([])

    def test_large_profile_prefix_free(self):
        lengths = [5] * 20 + [6] * 10
        code = code_from_lengths(lengths)
        # Construction already validates prefix-freeness on init.
        assert code.num_symbols == 30

    def test_decode_of_canonical_code(self):
        code = code_from_lengths([2, 2, 2, 3, 3])
        symbols = [4, 0, 3, 2, 1]
        assert code.decode(code.encode_sequence(symbols)) == symbols
