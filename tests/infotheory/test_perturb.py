"""Unit tests for repro.infotheory.perturb (prediction-error models)."""

import math

import pytest

from repro.infotheory.distributions import SizeDistribution
from repro.infotheory.perturb import (
    divergence_between,
    floor_support,
    from_condensed_profile,
    mix_with_uniform,
    prediction_quality_sweep,
    shift_ranges,
    swap_extremes,
    temperature,
)


@pytest.fixture
def truth() -> SizeDistribution:
    return SizeDistribution.range_uniform_subset(2**10, [2, 5, 8])


class TestFromCondensedProfile:
    def test_roundtrips_through_condense(self):
        n = 2**10
        masses = [0.0, 0.5, 0.0, 0.0, 0.3, 0.0, 0.0, 0.2, 0.0, 0.0]
        d = from_condensed_profile(n, masses, name="probe")
        for i, mass in enumerate(masses, start=1):
            assert d.condense().probability(i) == pytest.approx(mass)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="range masses"):
            from_condensed_profile(2**10, [1.0], name="bad")

    def test_rejects_negative(self):
        masses = [1.5, -0.5] + [0.0] * 8
        with pytest.raises(ValueError, match="negative"):
            from_condensed_profile(2**10, masses, name="bad")


class TestMixWithUniform:
    def test_zero_epsilon_is_truth(self, truth):
        mixed = mix_with_uniform(truth, 0.0)
        assert divergence_between(truth, mixed) == pytest.approx(0.0, abs=1e-12)

    def test_full_epsilon_is_uniform(self, truth):
        mixed = mix_with_uniform(truth, 1.0)
        condensed = mixed.condense()
        assert condensed.entropy() == pytest.approx(
            math.log2(condensed.num_ranges)
        )

    def test_divergence_monotone_in_epsilon(self, truth):
        divergences = [
            divergence_between(truth, mix_with_uniform(truth, eps))
            for eps in (0.1, 0.3, 0.6, 0.9)
        ]
        assert divergences == sorted(divergences)

    def test_always_finite_divergence(self, truth):
        mixed = mix_with_uniform(truth, 0.01)
        assert math.isfinite(divergence_between(truth, mixed))

    def test_rejects_bad_epsilon(self, truth):
        with pytest.raises(ValueError):
            mix_with_uniform(truth, 1.5)


class TestTemperature:
    def test_beta_one_is_identity(self, truth):
        assert divergence_between(truth, temperature(truth, 1.0)) == (
            pytest.approx(0.0, abs=1e-12)
        )

    def test_beta_zero_flattens_support(self, truth):
        flat = temperature(truth, 0.0)
        condensed = flat.condense()
        for i in (2, 5, 8):
            assert condensed.probability(i) == pytest.approx(1 / 3)

    def test_sharpening_concentrates(self):
        skewed = SizeDistribution.from_weights(2**8, {4: 0.7, 100: 0.3})
        sharp = temperature(skewed, 4.0)
        assert max(sharp.condense().q) > max(skewed.condense().q)

    def test_zero_ranges_stay_zero(self, truth):
        warm = temperature(truth, 0.5)
        assert warm.condense().support() == truth.condense().support()

    def test_rejects_negative_beta(self, truth):
        with pytest.raises(ValueError):
            temperature(truth, -0.1)


class TestShiftRanges:
    def test_zero_shift_identity(self, truth):
        assert divergence_between(truth, shift_ranges(truth, 0)) == (
            pytest.approx(0.0, abs=1e-12)
        )

    def test_positive_shift_moves_mass_up(self, truth):
        shifted = shift_ranges(truth, 2)
        assert shifted.condense().support() == [4, 7, 10]

    def test_shift_clamps_at_board_edges(self, truth):
        shifted = shift_ranges(truth, 100)
        assert shifted.condense().support() == [10]

    def test_negative_shift(self, truth):
        shifted = shift_ranges(truth, -1)
        assert shifted.condense().support() == [1, 4, 7]

    def test_shifted_prediction_has_infinite_divergence(self, truth):
        shifted = shift_ranges(truth, 1)
        assert divergence_between(truth, shifted) == math.inf


class TestSwapExtremes:
    def test_swap_moves_mass(self):
        skewed = SizeDistribution.from_weights(2**8, {4: 0.7, 100: 0.3})
        swapped = swap_extremes(skewed, 1.0)
        condensed = swapped.condense()
        # Range of 4 is 2; of 100 is 7: masses traded.
        assert condensed.probability(7) > condensed.probability(2)

    def test_zero_fraction_identity(self, truth):
        assert divergence_between(truth, swap_extremes(truth, 0.0)) == (
            pytest.approx(0.0, abs=1e-12)
        )


class TestFloorSupport:
    def test_makes_divergence_finite(self, truth):
        shifted = shift_ranges(truth, 3)
        repaired = floor_support(shifted, 1e-3)
        assert math.isfinite(divergence_between(truth, repaired))

    def test_preserves_bulk_mass(self, truth):
        repaired = floor_support(truth, 1e-4)
        for i in (2, 5, 8):
            assert repaired.condense().probability(i) == pytest.approx(
                1 / 3, abs=1e-3
            )

    def test_rejects_bad_floor(self, truth):
        with pytest.raises(ValueError):
            floor_support(truth, 0.0)


class TestSweep:
    def test_sweep_sorted_and_monotone(self, truth):
        rows = prediction_quality_sweep(truth, [0.5, 0.1, 0.9])
        epsilons = [row[0] for row in rows]
        divergences = [row[2] for row in rows]
        assert epsilons == sorted(epsilons)
        assert divergences == sorted(divergences)
