"""Unit tests for repro.infotheory.source_coding (Theorems 2.2 / 2.3)."""

import numpy as np
import pytest

from repro.infotheory.entropy import entropy, kl_divergence
from repro.infotheory.source_coding import (
    cross_coding_report,
    expected_code_length,
    shannon_code,
    source_coding_report,
)


class TestShannonCode:
    def test_dyadic_lengths(self):
        code = shannon_code([0.5, 0.25, 0.25])
        assert sorted(code.lengths()) == [1, 2, 2]

    def test_expected_length_within_one_of_entropy(self):
        pmf = [0.4, 0.3, 0.2, 0.1]
        code = shannon_code(pmf)
        expected = expected_code_length(code, pmf)
        assert entropy(pmf) <= expected <= entropy(pmf) + 1.0


class TestSourceCodingReport:
    def test_matched_dyadic_tight(self):
        report = source_coding_report([0.5, 0.25, 0.125, 0.125])
        assert report.expected_length_bits == pytest.approx(
            report.entropy_bits
        )
        assert report.satisfies_lower_bound()
        assert report.satisfies_upper_bound()

    def test_matched_generic(self):
        report = source_coding_report([0.4, 0.3, 0.3])
        assert report.satisfies_lower_bound()
        assert report.satisfies_upper_bound()
        assert report.divergence_bits == 0.0

    def test_random_sources(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            pmf = rng.dirichlet(np.ones(10)).tolist()
            report = source_coding_report(pmf)
            assert report.satisfies_lower_bound()
            assert report.satisfies_upper_bound()


class TestCrossCodingReport:
    def test_matched_pair_zero_divergence(self):
        pmf = [0.5, 0.3, 0.2]
        report = cross_coding_report(pmf, pmf)
        assert report.divergence_bits == 0.0
        assert report.satisfies_lower_bound()
        assert report.satisfies_upper_bound()

    def test_theorem_2_3_sandwich(self):
        source = [0.7, 0.2, 0.1]
        design = [0.2, 0.3, 0.5]
        report = cross_coding_report(source, design)
        assert report.divergence_bits == pytest.approx(
            kl_divergence(source, design)
        )
        assert report.satisfies_lower_bound()
        assert report.satisfies_upper_bound()

    def test_random_pairs(self):
        rng = np.random.default_rng(11)
        for _ in range(25):
            source = rng.dirichlet(np.ones(8)).tolist()
            design = rng.dirichlet(np.ones(8)).tolist()
            report = cross_coding_report(source, design)
            assert report.satisfies_lower_bound()
            assert report.satisfies_upper_bound()

    def test_rejects_uncovered_source(self):
        with pytest.raises(ValueError, match="infinite"):
            cross_coding_report([0.5, 0.5], [1.0, 0.0])

    def test_shared_zero_symbols_ignored(self):
        # Both source and design put zero mass on symbol 2.
        report = cross_coding_report([0.5, 0.5, 0.0], [0.25, 0.75, 0.0])
        assert report.satisfies_lower_bound()
        assert report.satisfies_upper_bound()

    def test_huffman_mode_lower_bound_still_holds(self):
        source = [0.6, 0.3, 0.1]
        design = [0.1, 0.3, 0.6]
        report = cross_coding_report(source, design, use_shannon_code=False)
        # The Source Coding Theorem's H lower bound holds for any uniquely
        # decodable code; the H+D form holds for codes optimal for the
        # design, which Huffman is.
        assert report.expected_length_bits >= report.entropy_bits - 1e-9

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="alphabet"):
            cross_coding_report([1.0], [0.5, 0.5])

    def test_slack_fields(self):
        report = cross_coding_report([0.7, 0.3], [0.5, 0.5])
        assert report.lower_slack_bits >= 0
        assert report.upper_slack_bits >= 0
        assert report.lower_bound_bits == pytest.approx(
            report.entropy_bits + report.divergence_bits
        )
        assert report.upper_bound_bits == pytest.approx(
            report.lower_bound_bits + 1.0
        )
