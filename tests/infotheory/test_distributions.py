"""Unit tests for repro.infotheory.distributions."""

import math

import numpy as np
import pytest

from repro.infotheory.condense import range_of_size
from repro.infotheory.distributions import SizeDistribution


class TestConstruction:
    def test_point(self):
        d = SizeDistribution.point(100, 42)
        assert d.probability(42) == 1.0
        assert d.support() == [42]

    def test_point_out_of_support(self):
        with pytest.raises(ValueError):
            SizeDistribution.point(100, 1)
        with pytest.raises(ValueError):
            SizeDistribution.point(100, 101)

    def test_from_weights_normalises(self):
        d = SizeDistribution.from_weights(10, {2: 3.0, 4: 1.0})
        assert d.probability(2) == pytest.approx(0.75)
        assert d.probability(4) == pytest.approx(0.25)

    def test_from_weights_rejects_empty(self):
        with pytest.raises(ValueError):
            SizeDistribution.from_weights(10, {2: 0.0})

    def test_uniform_support(self):
        d = SizeDistribution.uniform(10)
        assert d.support() == list(range(2, 11))
        assert d.probability(5) == pytest.approx(1 / 9)

    def test_range_uniform_entropy_is_loglog(self):
        d = SizeDistribution.range_uniform(2**16)
        assert d.condensed_entropy() == pytest.approx(4.0)

    def test_range_uniform_subset_exact_entropy(self):
        for m in (1, 2, 4, 8):
            d = SizeDistribution.range_uniform_subset(2**16, range(1, m + 1))
            assert d.condensed_entropy() == pytest.approx(
                math.log2(m), abs=1e-9
            )

    def test_range_uniform_subset_uniform_spread(self):
        d = SizeDistribution.range_uniform_subset(
            2**8, [3, 5], spread="uniform"
        )
        condensed = d.condense()
        assert condensed.probability(3) == pytest.approx(0.5)
        assert condensed.probability(5) == pytest.approx(0.5)
        # Mass is spread across several sizes within each range.
        assert len(d.support()) > 2

    def test_range_uniform_subset_rejects_bad_spread(self):
        with pytest.raises(ValueError, match="spread"):
            SizeDistribution.range_uniform_subset(256, [1], spread="blob")

    def test_range_uniform_subset_rejects_out_of_board(self):
        with pytest.raises(ValueError):
            SizeDistribution.range_uniform_subset(256, [9])

    def test_interpolated_entropy_hits_target(self):
        for target in (0.0, 0.7, 1.5, 2.9):
            d = SizeDistribution.interpolated_entropy(2**16, target)
            assert d.condensed_entropy() == pytest.approx(target, abs=1e-3)

    def test_interpolated_entropy_rejects_over_max(self):
        with pytest.raises(ValueError):
            SizeDistribution.interpolated_entropy(2**16, 4.5)

    def test_geometric_concentrates_small(self):
        d = SizeDistribution.geometric(1000, ratio=0.5)
        assert d.probability(2) > d.probability(3) > d.probability(10)

    def test_geometric_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            SizeDistribution.geometric(100, ratio=1.0)

    def test_zipf_monotone(self):
        d = SizeDistribution.zipf(1000, exponent=1.2)
        assert d.probability(2) > d.probability(20) > d.probability(200)

    def test_bimodal_two_modes(self):
        d = SizeDistribution.bimodal(2**12, low_size=8, high_size=2000)
        assert d.probability(8) == pytest.approx(0.5)
        assert d.probability(2000) == pytest.approx(0.5)

    def test_bimodal_jitter_spreads_ranges(self):
        d = SizeDistribution.bimodal(
            2**12, low_size=8, high_size=2000, jitter_ranges=1
        )
        condensed = d.condense()
        assert len(condensed.support()) >= 4

    def test_pliam_shape(self):
        d = SizeDistribution.pliam(2**16, light_ranges=4, heavy_mass=0.5)
        condensed = d.condense()
        assert condensed.probability(1) == pytest.approx(0.5)
        for i in (2, 3, 4, 5):
            assert condensed.probability(i) == pytest.approx(0.125)

    def test_pliam_rejects_too_many_light(self):
        with pytest.raises(ValueError):
            SizeDistribution.pliam(16, light_ranges=4)

    def test_mixture(self):
        a = SizeDistribution.point(100, 10)
        b = SizeDistribution.point(100, 50)
        mix = SizeDistribution.mixture([a, b], [1.0, 3.0])
        assert mix.probability(10) == pytest.approx(0.25)
        assert mix.probability(50) == pytest.approx(0.75)

    def test_mixture_rejects_mismatched_n(self):
        a = SizeDistribution.point(100, 10)
        b = SizeDistribution.point(200, 50)
        with pytest.raises(ValueError, match="same n"):
            SizeDistribution.mixture([a, b], [1.0, 1.0])


class TestQueriesAndSampling:
    def test_mean(self):
        d = SizeDistribution.from_weights(10, {2: 1.0, 4: 1.0})
        assert d.mean() == pytest.approx(3.0)

    def test_entropy_of_full_distribution(self):
        d = SizeDistribution.from_weights(10, {2: 1.0, 4: 1.0})
        assert d.entropy() == pytest.approx(1.0)

    def test_condense_caches(self):
        d = SizeDistribution.uniform(100)
        assert d.condense() is d.condense()

    def test_sample_within_support(self, rng: np.random.Generator):
        d = SizeDistribution.range_uniform_subset(2**10, [2, 5, 8])
        samples = d.sample_many(rng, 500)
        assert set(np.unique(samples)) <= set(d.support())

    def test_sample_frequencies_match_pmf(self, rng: np.random.Generator):
        d = SizeDistribution.from_weights(10, {2: 0.8, 9: 0.2})
        samples = d.sample_many(rng, 20_000)
        freq2 = float(np.mean(samples == 2))
        assert freq2 == pytest.approx(0.8, abs=0.02)

    def test_sample_condensed_ranges(self, rng: np.random.Generator):
        d = SizeDistribution.range_uniform_subset(2**10, [3, 7])
        ranges = {range_of_size(int(k)) for k in d.sample_many(rng, 300)}
        assert ranges == {3, 7}

    def test_guesswork_matches_condensed(self):
        d = SizeDistribution.pliam(2**10, 3, heavy_mass=0.7)
        # Heavy first: 1*0.7 + (2+3+4)*0.1 each.
        assert d.guesswork() == pytest.approx(0.7 + 0.1 * (2 + 3 + 4))

    def test_map_pmf_renormalises(self):
        d = SizeDistribution.uniform(10)
        doubled = d.map_pmf(lambda pmf: pmf * 2.0)
        assert doubled.probability(5) == pytest.approx(d.probability(5))

    def test_map_pmf_zeroes_low_sizes(self):
        d = SizeDistribution.uniform(10)

        def leak(pmf):
            pmf[0] = 1.0
            return pmf

        repaired = d.map_pmf(leak)
        assert repaired.probability(0) == 0.0

    def test_repr_contains_entropy(self):
        d = SizeDistribution.range_uniform(2**16)
        assert "H(c)=4.000b" in repr(d)
