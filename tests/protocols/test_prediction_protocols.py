"""Tests for the paper's prediction algorithms (Sections 2.5 and 2.6)."""

import numpy as np
import pytest

from repro.analysis.montecarlo import estimate_success_within
from repro.channel.simulator import run_uniform
from repro.core.predictions import Prediction
from repro.infotheory.condense import range_of_size, range_probability
from repro.infotheory.distributions import SizeDistribution
from repro.infotheory.perturb import floor_support, shift_ranges
from repro.protocols.code_search import CodeSearchProtocol
from repro.protocols.sorted_probing import (
    SortedProbingProtocol,
    sorted_probing_schedule,
)


class TestSortedProbingSchedule:
    def test_probe_order_probabilities(self):
        d = SizeDistribution.from_weights(2**6, {40: 0.7, 3: 0.3})
        schedule = sorted_probing_schedule(Prediction(d))
        # Range of 40 is 6 (likelier), of 3 is 2.
        assert schedule[0] == range_probability(6)
        assert schedule[1] == range_probability(2)

    def test_one_pass_length_is_num_ranges(self):
        d = SizeDistribution.uniform(2**6)
        schedule = sorted_probing_schedule(Prediction(d))
        assert len(schedule) == 6

    def test_support_only_drops_zero_ranges(self):
        d = SizeDistribution.range_uniform_subset(2**6, [2, 5])
        schedule = sorted_probing_schedule(Prediction(d), support_only=True)
        assert len(schedule) == 2

    def test_handle_k1(self):
        d = SizeDistribution.uniform(2**6)
        schedule = sorted_probing_schedule(Prediction(d), handle_k1=True)
        assert schedule[0] == 1.0


class TestSortedProbingProtocol:
    def test_one_shot_gives_up_after_pass(self, rng, nocd_channel):
        d = SizeDistribution.point(2**6, 3)
        protocol = SortedProbingProtocol(Prediction(d), one_shot=True)
        result = run_uniform(protocol, 64, rng, channel=nocd_channel, max_rounds=50)
        assert result.rounds <= 6

    def test_theorem_2_12_success_floor_perfect_prediction(
        self, rng, nocd_channel
    ):
        """Cor 2.15: success w.p. >= 1/16 within 2^(2H) rounds when Y = X."""
        n = 2**10
        for ranges in ([4], [2, 6], [1, 4, 7, 9]):
            truth = SizeDistribution.range_uniform_subset(n, ranges)
            entropy_bits = truth.condensed_entropy()
            budget = max(1, int(np.ceil(2.0 ** (2 * entropy_bits))))
            protocol = SortedProbingProtocol(Prediction(truth), one_shot=True)
            estimate = estimate_success_within(
                protocol,
                truth,
                rng,
                channel=nocd_channel,
                trials=1500,
                budget_rounds=budget,
            )
            assert estimate.lower >= 1.0 / 16.0

    def test_lemma_2_13_success_floor_at_correct_probe(self, rng, nocd_channel):
        """Success probability >= 1/8 in the round probing the true range."""
        n = 2**10
        for k in (3, 10, 100, 700):
            truth = SizeDistribution.point(n, k)
            protocol = SortedProbingProtocol(Prediction(truth), one_shot=True)
            # First probe targets the true range; measure round-1 success.
            successes = sum(
                run_uniform(
                    protocol, k, rng, channel=nocd_channel, max_rounds=1
                ).solved
                for _ in range(2000)
            )
            assert successes / 2000 >= 1.0 / 8.0

    def test_cycling_variant_always_solves(self, rng, nocd_channel):
        d = SizeDistribution.range_uniform_subset(2**8, [1, 5])
        protocol = SortedProbingProtocol(Prediction(d), one_shot=False)
        for _ in range(20):
            k = d.sample(rng)
            assert run_uniform(protocol, k, rng, channel=nocd_channel).solved

    def test_shifted_prediction_still_solves_with_floor(self, rng, nocd_channel):
        truth = SizeDistribution.point(2**8, 17)
        prediction = floor_support(shift_ranges(truth, 2), 0.05)
        protocol = SortedProbingProtocol(Prediction(prediction), one_shot=False)
        result = run_uniform(protocol, 17, rng, channel=nocd_channel)
        assert result.solved

    def test_accepts_raw_distribution(self):
        d = SizeDistribution.uniform(2**6)
        protocol = SortedProbingProtocol(d)
        assert protocol.prediction.n == 2**6

    def test_probe_order_exposed(self):
        d = SizeDistribution.point(2**6, 33)  # range 6
        protocol = SortedProbingProtocol(Prediction(d))
        assert protocol.probe_order()[0] == 6


class TestCodeSearchProtocol:
    def test_requires_cd(self):
        d = SizeDistribution.uniform(2**8)
        assert CodeSearchProtocol(Prediction(d)).requires_collision_detection

    def test_phases_ordered_by_code_length(self):
        d = SizeDistribution.from_weights(
            2**8, {4: 0.6, 30: 0.25, 200: 0.15}
        )
        protocol = CodeSearchProtocol(Prediction(d))
        classes = protocol.length_classes()
        lengths = sorted(classes)
        # The likeliest range must be in the shortest class.
        assert range_of_size(4) in classes[lengths[0]]

    @pytest.mark.parametrize("k", [2, 17, 100, 250])
    def test_cycling_solves_all_sizes(self, k, rng, cd_channel):
        d = SizeDistribution.uniform(2**8)
        protocol = CodeSearchProtocol(Prediction(d), one_shot=False)
        assert run_uniform(protocol, k, rng, channel=cd_channel).solved

    def test_one_shot_constant_success_perfect_prediction(self, rng, cd_channel):
        n = 2**10
        truth = SizeDistribution.range_uniform_subset(n, [2, 5, 8])
        protocol = CodeSearchProtocol(Prediction(truth), one_shot=True)
        estimate = estimate_success_within(
            protocol,
            truth,
            rng,
            channel=cd_channel,
            trials=1000,
            budget_rounds=200,
        )
        assert estimate.lower >= 0.25

    def test_point_prediction_probes_target_class_first(self, rng, cd_channel):
        truth = SizeDistribution.point(2**10, 100)
        protocol = CodeSearchProtocol(Prediction(truth), one_shot=True)
        rounds = [
            run_uniform(protocol, 100, rng, channel=cd_channel, max_rounds=100).rounds
            for _ in range(300)
        ]
        # The true range is in phase 1 (singleton class): most successes
        # land in the first few probe rounds.
        assert np.median(rounds) <= 6

    def test_support_only_restricts_phases(self):
        d = SizeDistribution.range_uniform_subset(2**8, [3, 6])
        protocol = CodeSearchProtocol(Prediction(d), support_only=True)
        searched = {i for phase in protocol.phases for i in phase}
        assert searched == {3, 6}

    def test_zero_mass_true_range_still_reachable_one_shot(
        self, rng, cd_channel
    ):
        """A ruled-out true range is probed in a late phase (long codeword)."""
        prediction = SizeDistribution.point(2**8, 100)  # range 7
        protocol = CodeSearchProtocol(Prediction(prediction), one_shot=True)
        searched = {i for phase in protocol.phases for i in phase}
        assert searched == set(range(1, 9))

    def test_mispredicted_cycling_still_solves(self, rng, cd_channel):
        prediction = SizeDistribution.point(2**8, 100)
        protocol = CodeSearchProtocol(Prediction(prediction), one_shot=False)
        # True size is in range 2; the prediction said range 7.
        result = run_uniform(protocol, 3, rng, channel=cd_channel)
        assert result.solved
