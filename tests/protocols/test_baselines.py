"""Tests for the baseline protocols: decay, Willard, fixed-p, BEB."""

import math

import numpy as np
import pytest

from repro.channel.simulator import run_players, run_uniform
from repro.core.protocol import ProtocolError
from repro.infotheory.condense import num_ranges
from repro.protocols.backoff import BinaryExponentialBackoff
from repro.protocols.decay import DecayProtocol, decay_schedule
from repro.protocols.fixed_probability import FixedProbabilityProtocol
from repro.protocols.jiang_zheng import JiangZhengProtocol, sawtooth_schedule
from repro.protocols.willard import WillardProtocol


class TestDecay:
    def test_schedule_is_geometric(self):
        schedule = decay_schedule(2**8)
        assert list(schedule) == [2.0**-i for i in range(1, 9)]

    def test_handle_k1_prepends_one(self):
        schedule = decay_schedule(2**8, handle_k1=True)
        assert schedule[0] == 1.0
        assert len(schedule) == 9

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            DecayProtocol(1)

    @pytest.mark.parametrize("k", [2, 10, 100, 900])
    def test_solves_all_sizes(self, k, rng, nocd_channel):
        protocol = DecayProtocol(2**10)
        result = run_uniform(protocol, k, rng, channel=nocd_channel)
        assert result.solved

    def test_expected_rounds_scale_with_log_n(self, rng, nocd_channel):
        """Decay's expected time grows with log n for worst-case k."""
        means = []
        for exponent in (6, 10, 14):
            n = 2**exponent
            k = n // 2  # worst case: last probability of the pass
            rounds = [
                run_uniform(
                    DecayProtocol(n), k, rng, channel=nocd_channel
                ).rounds
                for _ in range(400)
            ]
            means.append(np.mean(rounds))
        assert means[0] < means[1] < means[2]

    def test_k1_solved_with_handle_flag(self, rng, nocd_channel):
        protocol = DecayProtocol(2**8, handle_k1=True)
        result = run_uniform(protocol, 1, rng, channel=nocd_channel)
        assert result.solved and result.rounds == 1


class TestJiangZheng:
    def test_sawtooth_concatenates_growing_epochs(self):
        schedule = sawtooth_schedule(2**4)
        depth = num_ranges(2**4)
        assert len(schedule) == depth * (depth + 1) // 2
        expected = [
            2.0**-i for epoch in range(1, depth + 1) for i in range(1, epoch + 1)
        ]
        assert list(schedule) == expected

    def test_every_scale_recurs_in_deeper_epochs(self):
        """The robustness mechanism: probability 2^-i appears once per
        epoch of depth >= i, so destroying one good round never destroys
        the scale."""
        depth = num_ranges(2**6)
        probabilities = list(sawtooth_schedule(2**6))
        for i in range(1, depth + 1):
            assert probabilities.count(2.0**-i) == depth - i + 1

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            JiangZhengProtocol(1)

    @pytest.mark.parametrize("k", [2, 10, 100, 900])
    def test_solves_all_sizes(self, k, rng, nocd_channel):
        protocol = JiangZhengProtocol(2**10)
        result = run_uniform(protocol, k, rng, channel=nocd_channel)
        assert result.solved

    def test_publishes_batch_schedule_and_signature(self):
        protocol = JiangZhengProtocol(2**8)
        batch = protocol.batch_schedule()
        assert batch.cycle and tuple(batch.probabilities) == tuple(
            sawtooth_schedule(2**8).probabilities
        )
        assert protocol.history_signature() == JiangZhengProtocol(
            2**8
        ).history_signature()

    def test_one_shot_plays_a_single_cycle(self, rng, nocd_channel):
        protocol = JiangZhengProtocol(2**4, cycle=False)
        result = run_uniform(protocol, 2**8, rng, channel=nocd_channel)
        # A hopeless k for one finite cycle: exhausts instead of cycling.
        assert result.rounds <= len(sawtooth_schedule(2**4))


class TestFixedProbability:
    def test_constant_schedule(self):
        protocol = FixedProbabilityProtocol(8)
        session = protocol.session()
        for _ in range(5):
            assert session.next_probability() == pytest.approx(1 / 8)

    def test_o1_rounds_with_good_estimate(self, rng, nocd_channel):
        k = 64
        rounds = [
            run_uniform(
                FixedProbabilityProtocol(k), k, rng, channel=nocd_channel
            ).rounds
            for _ in range(2000)
        ]
        # Success probability ~ 1/e per round => mean ~ e.
        assert np.mean(rounds) == pytest.approx(math.e, rel=0.15)

    def test_rejects_bad_estimate(self):
        with pytest.raises(ValueError):
            FixedProbabilityProtocol(0.5)


class TestWillard:
    def test_requires_cd(self):
        assert WillardProtocol(2**8).requires_collision_detection

    @pytest.mark.parametrize("k", [2, 5, 37, 200])
    def test_solves_all_sizes(self, k, rng, cd_channel):
        protocol = WillardProtocol(2**8)
        result = run_uniform(protocol, k, rng, channel=cd_channel)
        assert result.solved

    def test_loglog_scaling(self, rng, cd_channel):
        """Willard's expected rounds grow slowly (log log n)."""
        means = []
        for exponent in (4, 16):
            n = 2**exponent
            k = max(2, n // 2)
            rounds = [
                run_uniform(
                    WillardProtocol(n), k, rng, channel=cd_channel
                ).rounds
                for _ in range(400)
            ]
            means.append(np.mean(rounds))
        # 4x exponent growth => roughly +2 rounds of binary search (x3 reps),
        # far below linear scaling.
        assert means[1] < means[0] + 9

    def test_restricted_ranges(self, rng, cd_channel):
        protocol = WillardProtocol(2**10, ranges=[5, 6, 7])
        result = run_uniform(protocol, 64, rng, channel=cd_channel)
        assert result.solved  # 64 is in range 6

    def test_even_repetitions_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            WillardProtocol(2**8, repetitions=2)

    def test_one_shot_exhausts_cleanly(self, rng, cd_channel):
        protocol = WillardProtocol(2**8, ranges=[1], restart=False)
        # k=200 is far above range 1; the single-range search fails fast.
        result = run_uniform(protocol, 200, rng, channel=cd_channel)
        assert not result.solved

    def test_handle_k1(self, rng, cd_channel):
        protocol = WillardProtocol(2**8, handle_k1=True)
        result = run_uniform(protocol, 1, rng, channel=cd_channel)
        assert result.solved and result.rounds == 1


class TestBinaryExponentialBackoff:
    def test_requires_cd(self, rng, nocd_channel):
        protocol = BinaryExponentialBackoff()
        with pytest.raises(ProtocolError):
            run_players(
                protocol, frozenset({1, 2}), 8, rng, channel=nocd_channel
            )

    @pytest.mark.parametrize("k", [1, 2, 20, 100])
    def test_solves(self, k, rng, cd_channel):
        protocol = BinaryExponentialBackoff()
        result = run_players(
            protocol,
            frozenset(range(k)),
            256,
            rng,
            channel=cd_channel,
            max_rounds=20_000,
        )
        assert result.solved

    def test_needs_rng(self):
        protocol = BinaryExponentialBackoff()
        with pytest.raises(ProtocolError, match="rng"):
            protocol.session(0, 8, "", rng=None)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BinaryExponentialBackoff(initial_window=0.5)
        with pytest.raises(ValueError):
            BinaryExponentialBackoff(initial_window=8, max_window=4)

    def test_window_dynamics(self, rng):
        from repro.core.feedback import Observation

        session = BinaryExponentialBackoff().session(0, 8, "", rng=rng)
        start = session.window
        session.observe(Observation.COLLISION, transmitted=True)
        assert session.window == start * 2
        session.observe(Observation.SILENCE, transmitted=False)
        assert session.window == start
