"""Tests for the phased-search engine and protocol adapters."""

import pytest

from repro.channel.simulator import run_uniform
from repro.core.feedback import Observation
from repro.core.protocol import ProtocolError, ScheduleExhausted
from repro.infotheory.condense import range_probability
from repro.protocols.adapters import as_history_policy
from repro.protocols.decay import DecayProtocol
from repro.protocols.searching import PhasedSearchProtocol
from repro.protocols.willard import WillardProtocol


class TestPhasedSearchValidation:
    def test_rejects_unsorted_phase(self):
        with pytest.raises(ValueError, match="ascending"):
            PhasedSearchProtocol([[3, 1]])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="distinct"):
            PhasedSearchProtocol([[1, 1]])

    def test_rejects_all_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            PhasedSearchProtocol([[], []])

    def test_rejects_non_positive_ranges(self):
        with pytest.raises(ValueError, match=">= 1"):
            PhasedSearchProtocol([[0, 1]])

    def test_rejects_even_repetitions(self):
        with pytest.raises(ValueError, match="odd"):
            PhasedSearchProtocol([[1, 2]], repetitions=4)

    def test_empty_interior_phases_skipped(self, rng, cd_channel):
        protocol = PhasedSearchProtocol([[], [3, 4], []], repetitions=1)
        result = run_uniform(protocol, 10, rng, channel=cd_channel)
        assert result.solved  # range 4 covers k=10


class TestPhasedSearchMechanics:
    def test_binary_search_direction(self):
        """Collision => probe larger ranges; silence => smaller."""
        protocol = PhasedSearchProtocol([[1, 2, 3, 4, 5]], repetitions=1)
        session = protocol.session()
        first = session.next_probability()
        assert first == range_probability(3)  # median
        session.observe(Observation.COLLISION)
        assert session.next_probability() == range_probability(4)
        session.observe(Observation.SILENCE)
        # Interval [4,5] -> after silence at 4... hi moves below lo ->
        # wait: median of [4,5] is 4; silence => hi = 3 < lo = 4 -> next
        # phase (restart).
        assert session.next_probability() == range_probability(3)

    def test_majority_vote_waits_for_repetitions(self):
        protocol = PhasedSearchProtocol([[1, 2, 3]], repetitions=3)
        session = protocol.session()
        first = session.next_probability()
        session.observe(Observation.COLLISION)
        # Same probe until 3 votes are cast.
        assert session.next_probability() == first
        session.observe(Observation.SILENCE)
        assert session.next_probability() == first
        session.observe(Observation.COLLISION)
        # Majority collision: move right.
        assert session.next_probability() == range_probability(3)

    def test_one_shot_exhaustion(self):
        protocol = PhasedSearchProtocol([[2]], repetitions=1, restart=False)
        session = protocol.session()
        session.next_probability()
        session.observe(Observation.SILENCE)
        with pytest.raises(ScheduleExhausted):
            session.next_probability()

    def test_restart_loops_to_first_phase(self):
        protocol = PhasedSearchProtocol([[2], [5]], repetitions=1, restart=True)
        session = protocol.session()
        probes = []
        for _ in range(4):
            probes.append(session.next_probability())
            session.observe(Observation.SILENCE)
        assert probes == [
            range_probability(2),
            range_probability(5),
            range_probability(2),
            range_probability(5),
        ]

    def test_quiet_observation_rejected(self):
        protocol = PhasedSearchProtocol([[1, 2]])
        session = protocol.session()
        session.next_probability()
        with pytest.raises(ProtocolError, match="collision detection"):
            session.observe(Observation.QUIET)

    def test_handle_k1_round_is_informationless(self):
        protocol = PhasedSearchProtocol([[2, 3]], repetitions=1, handle_k1=True)
        session = protocol.session()
        assert session.next_probability() == 1.0
        session.observe(Observation.COLLISION)  # k >= 2 always collides
        # Search state untouched: first real probe is the median.
        assert session.next_probability() == range_probability(2)

    def test_worst_case_rounds_per_pass(self):
        protocol = PhasedSearchProtocol(
            [[1, 2, 3], [7]], repetitions=3, handle_k1=True
        )
        # ceil(log2(4)) * 3 + ceil(log2(2)) * 3 + 1 = 6 + 3 + 1.
        assert protocol.worst_case_rounds_per_pass() == 10


class TestSessionReplayPolicy:
    def test_schedule_policy_depends_only_on_round(self):
        """Oblivious schedules see the round number (history length), not
        the history content."""
        policy = as_history_policy(DecayProtocol(2**6))
        assert policy.probability("0") == policy.probability("1")
        assert policy.probability("00") == policy.probability("11")
        assert policy.probability("") == 0.5
        assert policy.probability("0") == 0.25

    def test_willard_policy_matches_session(self, cd_channel):
        protocol = WillardProtocol(2**8, repetitions=1)
        policy = as_history_policy(protocol)
        session = protocol.session()
        history = ""
        for bit in "101":
            expected = session.next_probability()
            assert policy.probability(history) == expected
            observation = (
                Observation.COLLISION if bit == "1" else Observation.SILENCE
            )
            session.observe(observation)
            history += bit

    def test_defined_on_exhaustable_protocol(self):
        protocol = WillardProtocol(2**4, ranges=[2], restart=False, repetitions=1)
        policy = as_history_policy(protocol)
        assert policy.defined_on("")
        # After one failed probe the one-shot search is exhausted.
        assert not policy.defined_on("0")

    def test_malformed_history_rejected(self):
        policy = as_history_policy(DecayProtocol(2**6))
        with pytest.raises(ProtocolError, match="malformed"):
            policy.probability("0a")
