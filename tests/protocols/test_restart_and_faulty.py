"""Tests for restart/fallback combinators and faulty advice models."""

import numpy as np
import pytest

from repro.channel.simulator import run_players, run_uniform
from repro.core.advice import MinIdPrefixAdvice
from repro.core.faulty_advice import AdversarialAdvice, BitFlipAdvice
from repro.core.uniform import ProbabilitySchedule, ScheduleProtocol
from repro.protocols.adapters import UniformAsPlayerProtocol
from repro.protocols.advice_deterministic import (
    DeterministicScanProtocol,
    DeterministicTreeDescentProtocol,
)
from repro.protocols.decay import DecayProtocol
from repro.protocols.restart import FallbackPlayerProtocol, RestartProtocol
from repro.protocols.sorted_probing import SortedProbingProtocol
from repro.protocols.willard import WillardProtocol
from repro.infotheory.distributions import SizeDistribution


class TestRestartProtocol:
    def test_restarts_one_shot_schedule(self, rng, nocd_channel):
        inner = ScheduleProtocol(
            ProbabilitySchedule([1.0 / 64] * 4), cycle=False
        )
        wrapped = RestartProtocol(inner)
        result = run_uniform(wrapped, 64, rng, channel=nocd_channel)
        assert result.solved  # the bare one-shot would often fail in 4 rounds

    def test_equivalent_to_cycling(self, rng, nocd_channel):
        """Restarting a one-shot pass equals the cycling variant."""
        d = SizeDistribution.range_uniform_subset(2**8, [3, 6])
        one_shot = SortedProbingProtocol(d, one_shot=True)
        wrapped = RestartProtocol(one_shot)
        rounds_wrapped = [
            run_uniform(wrapped, 40, rng, channel=nocd_channel).rounds
            for _ in range(600)
        ]
        cycling = SortedProbingProtocol(d, one_shot=False)
        rounds_cycling = [
            run_uniform(cycling, 40, rng, channel=nocd_channel).rounds
            for _ in range(600)
        ]
        assert np.mean(rounds_wrapped) == pytest.approx(
            np.mean(rounds_cycling), rel=0.25
        )

    def test_inherits_cd_requirement(self):
        wrapped = RestartProtocol(WillardProtocol(2**8, restart=False))
        assert wrapped.requires_collision_detection

    def test_factory_form(self, rng, nocd_channel):
        wrapped = RestartProtocol(
            lambda: ScheduleProtocol(ProbabilitySchedule([0.1]), cycle=False)
        )
        result = run_uniform(wrapped, 10, rng, channel=nocd_channel)
        assert result.solved

    def test_attempt_counter(self, rng, nocd_channel):
        inner = ScheduleProtocol(ProbabilitySchedule([1e-9]), cycle=False)
        session = RestartProtocol(inner).session()
        for _ in range(5):
            session.next_probability()
        assert session.attempts == 5


class TestFallbackPlayerProtocol:
    def test_correct_advice_never_falls_back(self, rng, nocd_channel):
        n, b = 2**8, 2
        primary = DeterministicScanProtocol(b)
        fallback = FallbackPlayerProtocol(
            primary,
            UniformAsPlayerProtocol(DecayProtocol(n)),
            primary.worst_case_rounds(n),
        )
        result = run_players(
            fallback,
            frozenset({200, 220}),
            n,
            rng,
            channel=nocd_channel,
            advice_function=MinIdPrefixAdvice(b),
            max_rounds=primary.worst_case_rounds(n),
        )
        assert result.solved  # within the primary's own budget

    def test_faulty_advice_recovered_by_fallback(self, rng, nocd_channel):
        n, b = 2**8, 3
        primary = DeterministicScanProtocol(b)
        budget = primary.worst_case_rounds(n)
        fallback = FallbackPlayerProtocol(
            primary, UniformAsPlayerProtocol(DecayProtocol(n)), budget
        )
        # Advice always complemented: the scan looks in the wrong subtree.
        advice = AdversarialAdvice(MinIdPrefixAdvice(b), 1.0, rng)
        bare_result = run_players(
            primary,
            frozenset({200, 220}),
            n,
            rng,
            channel=nocd_channel,
            advice_function=advice,
            max_rounds=budget,
        )
        assert not bare_result.solved
        repaired_result = run_players(
            fallback,
            frozenset({200, 220}),
            n,
            rng,
            channel=nocd_channel,
            advice_function=advice,
            max_rounds=100 * budget,
        )
        assert repaired_result.solved

    def test_cd_descent_fallback(self, rng, cd_channel):
        n, b = 2**8, 3
        primary = DeterministicTreeDescentProtocol(b)
        budget = primary.worst_case_rounds(n)
        fallback = FallbackPlayerProtocol(
            primary, UniformAsPlayerProtocol(WillardProtocol(n)), budget
        )
        advice = AdversarialAdvice(MinIdPrefixAdvice(b), 1.0, rng)
        result = run_players(
            fallback,
            frozenset({200, 201}),
            n,
            rng,
            channel=cd_channel,
            advice_function=advice,
            max_rounds=100 * budget,
        )
        assert result.solved

    def test_rejects_advice_needing_fallback(self):
        with pytest.raises(ValueError, match="advice"):
            FallbackPlayerProtocol(
                DeterministicScanProtocol(2),
                DeterministicScanProtocol(2),
                4,
            )

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError, match="budget"):
            FallbackPlayerProtocol(
                DeterministicScanProtocol(2),
                UniformAsPlayerProtocol(DecayProtocol(2**8)),
                0,
            )


class TestFaultyAdviceModels:
    def test_zero_flip_is_clean(self, rng):
        base = MinIdPrefixAdvice(4)
        faulty = BitFlipAdvice(base, 0.0, rng)
        participants = {9, 12}
        assert faulty.checked_advise(participants, 16) == base.checked_advise(
            participants, 16
        )

    def test_full_flip_is_complement(self, rng):
        base = MinIdPrefixAdvice(4)
        faulty = BitFlipAdvice(base, 1.0, rng)
        clean = base.checked_advise({9}, 16)
        corrupted = faulty.checked_advise({9}, 16)
        assert corrupted == "".join(
            "1" if bit == "0" else "0" for bit in clean
        )

    def test_flip_preserves_length(self, rng):
        faulty = BitFlipAdvice(MinIdPrefixAdvice(3), 0.5, rng)
        assert len(faulty.checked_advise({5, 9}, 16)) == 3

    def test_flip_rate_statistics(self, rng):
        base = MinIdPrefixAdvice(4)
        faulty = BitFlipAdvice(base, 0.25, rng)
        clean = base.checked_advise({0}, 16)
        flips = 0
        trials = 2000
        for _ in range(trials):
            corrupted = faulty.advise({0}, 16)
            flips += sum(a != b for a, b in zip(clean, corrupted))
        rate = flips / (trials * 4)
        assert rate == pytest.approx(0.25, abs=0.03)

    def test_adversarial_probability(self, rng):
        base = MinIdPrefixAdvice(4)
        adversarial = AdversarialAdvice(base, 0.5, rng)
        clean = base.checked_advise({3}, 16)
        outcomes = {adversarial.advise({3}, 16) for _ in range(200)}
        complement = "".join("1" if bit == "0" else "0" for bit in clean)
        assert outcomes == {clean, complement}

    def test_invalid_probabilities_rejected(self, rng):
        with pytest.raises(ValueError):
            BitFlipAdvice(MinIdPrefixAdvice(2), 1.5, rng)
        with pytest.raises(ValueError):
            AdversarialAdvice(MinIdPrefixAdvice(2), -0.1, rng)


class TestUniformAsPlayerProtocol:
    def test_matches_uniform_semantics(self, rng, nocd_channel):
        n, k = 2**8, 50
        protocol = UniformAsPlayerProtocol(DecayProtocol(n))
        rounds = [
            run_players(
                protocol,
                frozenset(range(k)),
                n,
                rng,
                channel=nocd_channel,
                max_rounds=1000,
            ).rounds
            for _ in range(300)
        ]
        uniform_rounds = [
            run_uniform(
                DecayProtocol(n), k, rng, channel=nocd_channel, max_rounds=1000
            ).rounds
            for _ in range(300)
        ]
        assert np.mean(rounds) == pytest.approx(
            np.mean(uniform_rounds), rel=0.25
        )

    def test_needs_rng(self):
        protocol = UniformAsPlayerProtocol(DecayProtocol(2**8))
        from repro.core.protocol import ProtocolError

        with pytest.raises(ProtocolError, match="rng"):
            protocol.session(0, 2**8, "", rng=None)

    def test_cd_sessions_stay_synchronised(self, rng, cd_channel):
        n = 2**8
        protocol = UniformAsPlayerProtocol(WillardProtocol(n))
        result = run_players(
            protocol,
            frozenset(range(30)),
            n,
            rng,
            channel=cd_channel,
            max_rounds=2000,
        )
        assert result.solved
