"""Tests for the Section 3 perfect-advice protocols (Table 2 upper bounds)."""

import numpy as np
import pytest

from repro.channel.network import (
    ClusteredAdversary,
    RandomAdversary,
    SpreadAdversary,
    SuffixAdversary,
)
from repro.channel.simulator import run_players, run_uniform
from repro.core.advice import MinIdPrefixAdvice, id_bit_width
from repro.protocols.advice_deterministic import (
    DeterministicScanProtocol,
    DeterministicTreeDescentProtocol,
)
from repro.protocols.advice_randomized import (
    TruncatedDecayProtocol,
    advised_block,
    block_index_for,
    true_range_for_count,
    truncated_willard_for_count,
)


class TestDeterministicScan:
    @pytest.mark.parametrize("b", [0, 2, 4, 8])
    def test_always_solves_within_bound(self, b, rng, nocd_channel):
        n = 2**8
        protocol = DeterministicScanProtocol(b)
        for adversary in (RandomAdversary(), SuffixAdversary(), SpreadAdversary()):
            participants = adversary.checked_select(n, 5, rng)
            result = run_players(
                protocol,
                participants,
                n,
                rng,
                channel=nocd_channel,
                advice_function=MinIdPrefixAdvice(b),
                max_rounds=protocol.worst_case_rounds(n),
            )
            assert result.solved
            assert result.rounds <= protocol.worst_case_rounds(n)

    def test_worst_case_bound_formula(self):
        assert DeterministicScanProtocol(0).worst_case_rounds(2**8) == 256
        assert DeterministicScanProtocol(3).worst_case_rounds(2**8) == 32
        assert DeterministicScanProtocol(8).worst_case_rounds(2**8) == 1

    def test_worst_case_achieved_by_suffix_adversary(self, rng, nocd_channel):
        """Participants at the top of the advised subtree force ~2^(w-b)."""
        n, b = 2**8, 2
        protocol = DeterministicScanProtocol(b)
        participants = frozenset({n - 2, n - 1})
        result = run_players(
            protocol,
            participants,
            n,
            rng,
            channel=nocd_channel,
            advice_function=MinIdPrefixAdvice(b),
            max_rounds=protocol.worst_case_rounds(n),
        )
        assert result.rounds >= protocol.worst_case_rounds(n) - 1

    def test_full_advice_one_round(self, rng, nocd_channel):
        n = 2**8
        b = id_bit_width(n)
        protocol = DeterministicScanProtocol(b)
        participants = frozenset({57, 123, 200})
        result = run_players(
            protocol,
            participants,
            n,
            rng,
            channel=nocd_channel,
            advice_function=MinIdPrefixAdvice(b),
            max_rounds=2,
        )
        assert result.solved and result.rounds == 1

    def test_each_round_at_most_one_transmitter(self, rng, nocd_channel):
        """The scan never collides: candidate slots are disjoint."""
        n = 2**6
        protocol = DeterministicScanProtocol(1)
        participants = frozenset({33, 40, 50, 63})
        result = run_players(
            protocol,
            participants,
            n,
            rng,
            channel=nocd_channel,
            advice_function=MinIdPrefixAdvice(1),
            max_rounds=protocol.worst_case_rounds(n),
            record_trace=True,
        )
        assert all(record.transmit_count <= 1 for record in result.trace)

    def test_non_power_of_two_n(self, rng, nocd_channel):
        n = 100
        protocol = DeterministicScanProtocol(2)
        participants = frozenset({97, 99})
        result = run_players(
            protocol,
            participants,
            n,
            rng,
            channel=nocd_channel,
            advice_function=MinIdPrefixAdvice(2),
            max_rounds=protocol.worst_case_rounds(n),
        )
        assert result.solved


class TestDeterministicTreeDescent:
    @pytest.mark.parametrize("b", [0, 2, 4])
    @pytest.mark.parametrize(
        "adversary",
        [RandomAdversary(), ClusteredAdversary(), SpreadAdversary()],
        ids=lambda adversary: adversary.name,
    )
    def test_solves_within_bound(self, b, adversary, rng, cd_channel):
        n = 2**8
        protocol = DeterministicTreeDescentProtocol(b)
        participants = adversary.checked_select(n, 7, rng)
        result = run_players(
            protocol,
            participants,
            n,
            rng,
            channel=cd_channel,
            advice_function=MinIdPrefixAdvice(b),
            max_rounds=protocol.worst_case_rounds(n),
        )
        assert result.solved
        assert result.rounds <= protocol.worst_case_rounds(n)

    def test_worst_case_bound_formula(self):
        assert DeterministicTreeDescentProtocol(0).worst_case_rounds(2**8) == 9
        assert DeterministicTreeDescentProtocol(8).worst_case_rounds(2**8) == 1

    def test_adjacent_participants_force_full_descent(self, rng, cd_channel):
        n, b = 2**8, 0
        protocol = DeterministicTreeDescentProtocol(b)
        participants = frozenset({n - 2, n - 1})
        result = run_players(
            protocol,
            participants,
            n,
            rng,
            channel=cd_channel,
            advice_function=MinIdPrefixAdvice(b),
            max_rounds=protocol.worst_case_rounds(n),
        )
        # Ids differing only in the last bit are separated at the last level.
        assert result.rounds >= id_bit_width(n) - b - 1

    def test_single_participant(self, rng, cd_channel):
        n = 2**6
        protocol = DeterministicTreeDescentProtocol(0)
        result = run_players(
            protocol,
            frozenset({42}),
            n,
            rng,
            channel=cd_channel,
            advice_function=MinIdPrefixAdvice(0),
            max_rounds=protocol.worst_case_rounds(n),
        )
        assert result.solved

    def test_descent_tracks_min_id_subtree(self, rng, cd_channel):
        """With advice pointing at the min id, it is always reachable."""
        n = 2**6
        for b in (1, 3, 5):
            protocol = DeterministicTreeDescentProtocol(b)
            participants = frozenset({7, 9, 50})
            result = run_players(
                protocol,
                participants,
                n,
                rng,
                channel=cd_channel,
                advice_function=MinIdPrefixAdvice(b),
                max_rounds=protocol.worst_case_rounds(n),
            )
            assert result.solved


class TestTruncatedDecay:
    def test_block_contains_true_range(self):
        n = 2**12
        for b in (0, 1, 2, 3):
            for k in (2, 10, 500, 4000):
                protocol = TruncatedDecayProtocol.for_count(n, b, k)
                assert true_range_for_count(k) in protocol.block

    def test_pass_length_shrinks_with_b(self):
        n = 2**12
        lengths = [
            len(TruncatedDecayProtocol.for_count(n, b, 100).block)
            for b in range(0, 4)
        ]
        assert lengths == sorted(lengths, reverse=True)
        assert lengths[0] == 12

    @pytest.mark.parametrize("b", [0, 2, 3])
    def test_solves(self, b, rng, nocd_channel):
        n, k = 2**12, 700
        protocol = TruncatedDecayProtocol.for_count(n, b, k)
        assert run_uniform(protocol, k, rng, channel=nocd_channel).solved

    def test_expected_rounds_improve_with_b(self, rng, nocd_channel):
        n, k = 2**12, 700
        means = []
        for b in (0, 2):
            protocol = TruncatedDecayProtocol.for_count(n, b, k)
            rounds = [
                run_uniform(protocol, k, rng, channel=nocd_channel).rounds
                for _ in range(800)
            ]
            means.append(np.mean(rounds))
        assert means[1] < means[0]

    def test_empty_block_rejected(self):
        # 2^4 = 16 blocks over 12 ranges: the last blocks are empty.
        with pytest.raises(ValueError, match="empty"):
            advised_block(2**12, 4, 15)

    def test_block_index_for_matches_advice_function(self):
        n = 2**12
        for k in (2, 100, 3000):
            for b in (1, 2):
                index = block_index_for(n, b, k)
                assert true_range_for_count(k) in advised_block(n, b, index)


class TestTruncatedWillard:
    @pytest.mark.parametrize("b", [0, 1, 3])
    def test_solves(self, b, rng, cd_channel):
        n, k = 2**12, 700
        protocol = truncated_willard_for_count(n, b, k)
        assert run_uniform(protocol, k, rng, channel=cd_channel).solved

    def test_search_space_shrinks(self):
        n = 2**12
        sizes = [
            len(truncated_willard_for_count(n, b, 700).phases[0])
            for b in (0, 1, 2, 3)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_max_advice_singleton_block(self, rng, cd_channel):
        n, k = 2**16, 700
        b = 4  # 16 blocks over 16 ranges: singleton
        protocol = truncated_willard_for_count(n, b, k)
        assert len(protocol.phases[0]) == 1
        rounds = [
            run_uniform(protocol, k, rng, channel=cd_channel).rounds
            for _ in range(400)
        ]
        # Single-range search: expected O(1) rounds (repetition-bounded).
        assert np.mean(rounds) <= 7
