"""Tests for the Monte Carlo estimators and the exact solvers.

The key cross-validation: the exact solve-time distribution for oblivious
schedules must agree with the simulation engine's statistics.
"""

import pytest

from repro.analysis.exact import (
    cd_expected_rounds,
    expected_rounds_mixture,
    round_success_probabilities,
    schedule_solve_time,
    schedule_success_within,
)
from repro.analysis.montecarlo import (
    estimate_player_rounds,
    estimate_success_within,
    estimate_uniform_rounds,
)
from repro.channel.network import RandomAdversary
from repro.core.advice import MinIdPrefixAdvice
from repro.core.uniform import ProbabilitySchedule, ScheduleProtocol
from repro.infotheory.distributions import SizeDistribution
from repro.protocols.advice_deterministic import DeterministicScanProtocol
from repro.protocols.adapters import as_history_policy
from repro.protocols.decay import DecayProtocol
from repro.protocols.willard import WillardProtocol


class TestRoundSuccessProbabilities:
    def test_formula(self):
        q = round_success_probabilities([0.5, 0.25], 2)
        assert q[0] == pytest.approx(2 * 0.5 * 0.5)
        assert q[1] == pytest.approx(2 * 0.25 * 0.75)


class TestScheduleSolveTime:
    def test_pmf_sums_with_residual(self):
        dist = schedule_solve_time([0.5, 0.25, 0.1], 4)
        assert dist.pmf.sum() + dist.residual == pytest.approx(1.0)

    def test_constant_schedule_is_geometric(self):
        k, p = 8, 0.1
        rate = k * p * (1 - p) ** (k - 1)
        dist = schedule_solve_time([p], k, horizon=2000, cycle=True)
        assert dist.expected_rounds_conditional() == pytest.approx(
            1.0 / rate, rel=1e-3
        )

    def test_success_within_monotone(self):
        dist = schedule_solve_time([0.3] * 20, 5)
        values = [dist.success_within(budget) for budget in range(0, 21)]
        assert values == sorted(values)

    def test_cycle_requires_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            schedule_solve_time([0.5], 2, cycle=True)

    def test_success_within_helper(self):
        p = schedule_success_within([0.5], 2, budget=1)
        assert p == pytest.approx(0.5)

    def test_penalty_expectation(self):
        dist = schedule_solve_time([1e-12], 5)
        assert dist.expected_rounds_with_penalty(100.0) == pytest.approx(
            100.0, rel=1e-6
        )

    def test_matches_monte_carlo(self, rng, nocd_channel):
        """Exact solver vs simulation on the same decay schedule."""
        n, k = 2**8, 37
        protocol = DecayProtocol(n)
        exact = schedule_solve_time(
            protocol.schedule, k, horizon=400, cycle=True
        )
        estimate = estimate_uniform_rounds(
            protocol, k, rng, channel=nocd_channel, trials=4000, max_rounds=400
        )
        assert estimate.rounds.mean == pytest.approx(
            exact.expected_rounds_conditional(), rel=0.06
        )

    def test_mixture_expectation(self):
        per_size = {
            2: schedule_solve_time([0.5], 2, horizon=500, cycle=True),
            8: schedule_solve_time([0.125], 8, horizon=500, cycle=True),
        }
        mixed = expected_rounds_mixture(per_size, {2: 0.5, 8: 0.5})
        expected = 0.5 * per_size[2].expected_rounds_conditional() + (
            0.5 * per_size[8].expected_rounds_conditional()
        )
        assert mixed == pytest.approx(expected)

    def test_mixture_missing_size_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            expected_rounds_mixture({}, {4: 1.0})


class TestCdExpectedRounds:
    def test_matches_monte_carlo_willard(self, rng, cd_channel):
        n, k = 2**8, 37
        protocol = WillardProtocol(n, repetitions=1)
        policy = as_history_policy(protocol)
        contribution, mass = cd_expected_rounds(
            policy, k, max_depth=18, prune_mass=1e-7
        )
        estimate = estimate_uniform_rounds(
            protocol, k, rng, channel=cd_channel, trials=4000, max_rounds=18
        )
        assert mass > 0.9
        assert estimate.rounds.mean == pytest.approx(
            contribution / mass, rel=0.1
        )

    def test_mass_bounded_by_one(self):
        policy = as_history_policy(WillardProtocol(2**6, repetitions=1))
        _, mass = cd_expected_rounds(policy, 10, max_depth=14)
        assert 0.0 < mass <= 1.0 + 1e-9

    def test_node_budget_enforced(self):
        policy = as_history_policy(WillardProtocol(2**8, repetitions=1))
        with pytest.raises(ValueError, match="nodes"):
            cd_expected_rounds(
                policy, 37, max_depth=40, prune_mass=1e-30, max_nodes=10_000
            )

    def test_rejects_bad_args(self):
        policy = as_history_policy(WillardProtocol(2**6))
        with pytest.raises(ValueError):
            cd_expected_rounds(policy, 0, max_depth=5)
        with pytest.raises(ValueError):
            cd_expected_rounds(policy, 2, max_depth=0)
        with pytest.raises(ValueError):
            cd_expected_rounds(policy, 2, max_depth=5, prune_mass=0.0)


class TestMonteCarloHarness:
    def test_size_distribution_source(self, rng, nocd_channel):
        d = SizeDistribution.range_uniform_subset(2**8, [2, 5])
        estimate = estimate_uniform_rounds(
            DecayProtocol(2**8),
            d,
            rng,
            channel=nocd_channel,
            trials=500,
            max_rounds=500,
        )
        assert estimate.success.rate == 1.0
        assert estimate.rounds.mean > 1.0

    def test_callable_source(self, rng, nocd_channel):
        estimate = estimate_uniform_rounds(
            DecayProtocol(2**8),
            lambda generator: 10,
            rng,
            channel=nocd_channel,
            trials=200,
            max_rounds=500,
        )
        assert estimate.success.rate == 1.0

    def test_factory_protocol(self, rng, nocd_channel):
        estimate = estimate_uniform_rounds(
            lambda: DecayProtocol(2**8),
            16,
            rng,
            channel=nocd_channel,
            trials=200,
            max_rounds=500,
        )
        assert estimate.success.rate == 1.0

    @pytest.mark.parametrize("batch", [False, True])
    def test_universal_failure_reports_no_samples(
        self, rng, nocd_channel, batch
    ):
        """No successes => an explicit empty rounds summary, not a
        fabricated sample pinned at the budget."""
        protocol = ScheduleProtocol(ProbabilitySchedule([1e-15]), cycle=True)
        estimate = estimate_uniform_rounds(
            protocol, 5, rng, channel=nocd_channel, trials=50, max_rounds=10,
            batch=batch,
        )
        assert estimate.success.rate == 0.0
        assert not estimate.any_successes
        assert estimate.rounds.count == 0
        assert estimate.rounds.mean != estimate.rounds.mean  # NaN

    def test_success_within_tracks_exact(self, rng, nocd_channel):
        n, k, budget = 2**8, 37, 8
        protocol = DecayProtocol(n)
        exact = schedule_success_within(
            protocol.schedule.cycled(budget), k, budget
        )
        estimate = estimate_success_within(
            protocol, k, rng, channel=nocd_channel, trials=4000,
            budget_rounds=budget,
        )
        assert estimate.lower <= exact <= estimate.upper

    def test_player_harness(self, rng, nocd_channel):
        n = 2**6
        adversary = RandomAdversary()
        estimate = estimate_player_rounds(
            DeterministicScanProtocol(2),
            lambda generator: adversary.checked_select(n, 4, generator),
            n,
            rng,
            channel=nocd_channel,
            advice_function=MinIdPrefixAdvice(2),
            trials=100,
            max_rounds=2**6,
        )
        assert estimate.success.rate == 1.0
        assert estimate.rounds.maximum <= 16

    def test_trials_validation(self, rng, nocd_channel):
        with pytest.raises(ValueError):
            estimate_uniform_rounds(
                DecayProtocol(16), 4, rng, channel=nocd_channel,
                trials=0, max_rounds=10,
            )
