"""Tests for the exact phased-search solver (state-space DP)."""

import math

import pytest

from repro.analysis.exact_search import phased_search_expected_rounds
from repro.analysis.montecarlo import estimate_uniform_rounds
from repro.core.predictions import Prediction
from repro.infotheory.distributions import SizeDistribution
from repro.protocols.code_search import CodeSearchProtocol
from repro.protocols.searching import PhasedSearchProtocol
from repro.protocols.willard import WillardProtocol


class TestAgainstMonteCarlo:
    def test_willard_single_repetition(self, rng, cd_channel):
        protocol = WillardProtocol(2**8, repetitions=1)
        exact = phased_search_expected_rounds(protocol, 37)
        estimate = estimate_uniform_rounds(
            protocol, 37, rng, channel=cd_channel, trials=8000, max_rounds=4000
        )
        assert estimate.rounds.mean == pytest.approx(
            exact.expected_rounds, rel=0.05
        )

    def test_willard_majority_votes(self, rng, cd_channel):
        protocol = WillardProtocol(2**8, repetitions=3)
        exact = phased_search_expected_rounds(protocol, 100)
        estimate = estimate_uniform_rounds(
            protocol, 100, rng, channel=cd_channel, trials=8000, max_rounds=4000
        )
        assert estimate.rounds.mean == pytest.approx(
            exact.expected_rounds, rel=0.05
        )

    def test_code_search(self, rng, cd_channel):
        truth = SizeDistribution.range_uniform_subset(2**8, [2, 6])
        protocol = CodeSearchProtocol(
            Prediction(truth), repetitions=3, one_shot=False
        )
        exact = phased_search_expected_rounds(protocol, 40)
        estimate = estimate_uniform_rounds(
            protocol, 40, rng, channel=cd_channel, trials=8000, max_rounds=4000
        )
        assert estimate.rounds.mean == pytest.approx(
            exact.expected_rounds, rel=0.05
        )

    def test_one_shot_success_probability(self, rng, cd_channel):
        truth = SizeDistribution.range_uniform_subset(2**8, [2, 6])
        protocol = CodeSearchProtocol(
            Prediction(truth), repetitions=3, one_shot=True
        )
        exact = phased_search_expected_rounds(protocol, 40)
        successes = sum(
            estimate_uniform_rounds(
                protocol, 40, rng, channel=cd_channel, trials=1,
                max_rounds=1000,
            ).success.successes
            for _ in range(3000)
        )
        assert successes / 3000 == pytest.approx(
            exact.success_probability_per_pass, abs=0.03
        )


class TestStructuralProperties:
    def test_expected_rounds_scale_with_search_space(self):
        small = phased_search_expected_rounds(
            WillardProtocol(2**8, ranges=[4, 5, 6], repetitions=1), 32
        )
        large = phased_search_expected_rounds(
            WillardProtocol(2**16, repetitions=1), 32
        )
        assert small.expected_rounds < large.expected_rounds

    def test_repetitions_raise_per_pass_success(self):
        lone = phased_search_expected_rounds(
            WillardProtocol(2**8, repetitions=1), 100
        )
        voted = phased_search_expected_rounds(
            WillardProtocol(2**8, repetitions=3), 100
        )
        assert (
            voted.success_probability_per_pass
            >= lone.success_probability_per_pass
        )

    def test_impossible_search_is_infinite(self):
        # Probing only range 1 (p = 1/2): k = 2 actually CAN succeed.
        # Use a huge k where probing range 1 never isolates anyone.
        protocol = WillardProtocol(2**8, ranges=[1], repetitions=1)
        result = phased_search_expected_rounds(protocol, 200)
        assert result.expected_rounds > 10**6 or math.isinf(
            result.expected_rounds
        )

    def test_handle_k1_adds_one_round(self):
        base = phased_search_expected_rounds(
            WillardProtocol(2**8, repetitions=1), 37
        )
        extra = phased_search_expected_rounds(
            WillardProtocol(2**8, repetitions=1, handle_k1=True), 37
        )
        assert extra.expected_rounds == pytest.approx(
            base.expected_rounds + 1.0
        )

    def test_handle_k1_with_k1_rejected(self):
        protocol = WillardProtocol(2**8, handle_k1=True)
        with pytest.raises(ValueError, match="k >= 2"):
            phased_search_expected_rounds(protocol, 1)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            phased_search_expected_rounds(WillardProtocol(2**8), 0)

    def test_one_shot_bounded_by_pass_length(self):
        protocol = PhasedSearchProtocol(
            [[1, 2, 3, 4]], repetitions=3, restart=False
        )
        result = phased_search_expected_rounds(protocol, 10)
        assert result.expected_rounds <= protocol.worst_case_rounds_per_pass()
