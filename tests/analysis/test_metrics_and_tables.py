"""Tests for repro.analysis metrics, tables and textplot."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    ProportionEstimate,
    Summary,
    linear_fit,
    loglog_slope,
    wilson_interval,
)
from repro.analysis.tables import (
    format_cell,
    render_csv,
    render_table,
    rows_to_columns,
)
from repro.analysis.textplot import text_plot


class TestSummary:
    def test_from_samples(self):
        summary = Summary.from_samples([1, 2, 3, 4, 5])
        assert summary.mean == 3.0
        assert summary.median == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.count == 5

    def test_single_sample(self):
        summary = Summary.from_samples([7.0])
        assert summary.std == 0.0
        assert summary.mean == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Summary.from_samples([])

    def test_ci_shrinks_with_count(self):
        rng = np.random.default_rng(3)
        small = Summary.from_samples(rng.normal(0, 1, 50))
        large = Summary.from_samples(rng.normal(0, 1, 5000))
        assert large.ci95_halfwidth < small.ci95_halfwidth

    def test_ci_contains_mean(self):
        summary = Summary.from_samples([1, 2, 3])
        low, high = summary.ci95()
        assert low <= summary.mean <= high


class TestWilson:
    def test_interval_bounds(self):
        low, high = wilson_interval(50, 100)
        assert 0.4 < low < 0.5 < high < 0.6

    def test_extremes_stay_in_unit_interval(self):
        low, high = wilson_interval(0, 10)
        assert low == 0.0 and high < 0.5
        low, high = wilson_interval(10, 10)
        assert low > 0.5 and high == 1.0

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)

    def test_proportion_estimate(self):
        estimate = ProportionEstimate(successes=30, trials=100)
        assert estimate.rate == 0.3
        assert estimate.lower < 0.3 < estimate.upper


class TestFits:
    def test_linear_fit_exact(self):
        slope, intercept = linear_fit([0, 1, 2], [1, 3, 5])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_loglog_slope_power_law(self):
        xs = [2, 4, 8, 16]
        ys = [x**1.5 for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(1.5)

    def test_loglog_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            loglog_slope([1, 0], [1, 2])

    def test_linear_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])


class TestTables:
    def test_format_cell(self):
        assert format_cell(1.23456) == "1.235"
        assert format_cell(True) == "yes"
        assert format_cell("abc") == "abc"
        # NaN marks "no data" (zero-success rounds summaries): legible in
        # tables, parseable in CSV.
        assert format_cell(float("nan")) == "n/a"
        assert format_cell(float("nan"), nan_text="nan") == "nan"
        assert "e" in format_cell(1.5e9)

    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a"], [[1, 2]])

    def test_render_csv(self):
        csv = render_csv(["x", "y"], [[1, 2.0]])
        assert csv.splitlines()[0] == "x,y"
        assert csv.splitlines()[1].startswith("1,2")

    def test_rows_to_columns(self):
        columns = rows_to_columns(["x", "y"], [[1, 2], [3, 4]])
        assert columns["x"] == [1, 3]
        assert columns["y"] == [2, 4]


class TestTextPlot:
    def test_contains_markers_and_legend(self):
        plot = text_plot(
            {"series": ([1, 2, 3], [1, 4, 9])}, width=20, height=8
        )
        assert "*" in plot
        assert "series" in plot

    def test_two_series_distinct_markers(self):
        plot = text_plot(
            {
                "a": ([1, 2], [1, 2]),
                "b": ([1, 2], [2, 1]),
            },
            width=16,
            height=6,
        )
        assert "*" in plot and "o" in plot

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            text_plot({})

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="mismatched"):
            text_plot({"s": ([1, 2], [1])})

    def test_constant_series_ok(self):
        plot = text_plot({"s": ([1, 2, 3], [5, 5, 5])}, width=16, height=6)
        assert "5" in plot

    def test_axis_labels(self):
        plot = text_plot(
            {"s": ([0, 10], [0, 1])}, width=16, height=6,
            x_label="b", y_label="rounds",
        )
        assert "rounds vs b" in plot
