"""Tests for estimator engine routing and the player-batch contract."""

import numpy as np
import pytest

from repro.analysis.montecarlo import (
    ENGINE_BATCH_HISTORY,
    ENGINE_BATCH_SCHEDULE,
    ENGINE_SCALAR_UNIFORM,
    estimate_player_rounds,
    select_uniform_engine,
)
from repro.channel.channel import with_collision_detection
from repro.channel.network import RandomAdversary
from repro.protocols.backoff import BinaryExponentialBackoff
from repro.protocols.decay import DecayProtocol
from repro.protocols.willard import WillardProtocol


class TestSelectUniformEngine:
    def test_schedule_protocols_hit_the_schedule_engine(self):
        assert select_uniform_engine(DecayProtocol(256)) == ENGINE_BATCH_SCHEDULE

    def test_cd_search_hits_the_history_engine(self):
        assert select_uniform_engine(WillardProtocol(256)) == ENGINE_BATCH_HISTORY

    def test_batch_false_forces_scalar(self):
        assert (
            select_uniform_engine(DecayProtocol(256), False)
            == ENGINE_SCALAR_UNIFORM
        )

    def test_factories_run_scalar(self):
        assert (
            select_uniform_engine(lambda: DecayProtocol(256))
            == ENGINE_SCALAR_UNIFORM
        )

    def test_batch_true_on_factory_raises(self):
        with pytest.raises(ValueError, match="batch=True"):
            select_uniform_engine(lambda: DecayProtocol(256), True)


class TestPlayerBatchContract:
    def _estimate(self, batch):
        adversary = RandomAdversary()
        return estimate_player_rounds(
            BinaryExponentialBackoff(),
            lambda rng: adversary.checked_select(64, 3, rng),
            64,
            np.random.default_rng(0),
            channel=with_collision_detection(),
            trials=10,
            max_rounds=200,
            batch=batch,
        )

    def test_batch_true_warns_and_falls_back(self):
        """batch=True is an unsupported request, not a silent no-op."""
        with pytest.warns(RuntimeWarning, match="no vectorized engine"):
            warned = self._estimate(True)
        assert warned.success.trials == 10

    def test_batch_none_and_false_are_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            silent_none = self._estimate(None)
            silent_false = self._estimate(False)
        assert silent_none.success.trials == silent_false.success.trials == 10

    def test_scalar_semantics_unchanged_by_batch_flag(self):
        """The flag must not perturb the RNG stream or the results."""
        with pytest.warns(RuntimeWarning):
            via_true = self._estimate(True)
        assert via_true.rounds == self._estimate(None).rounds
