"""Tests for estimator engine routing and the player-batch contract."""

import numpy as np
import pytest

from repro.analysis.montecarlo import (
    ENGINE_BATCH_HISTORY,
    ENGINE_BATCH_PLAYER,
    ENGINE_BATCH_SCHEDULE,
    ENGINE_SCALAR_PLAYER,
    ENGINE_SCALAR_UNIFORM,
    estimate_player_rounds,
    select_player_engine,
    select_uniform_engine,
)
from repro.channel.channel import with_collision_detection
from repro.channel.network import RandomAdversary
from repro.protocols.adapters import UniformAsPlayerProtocol
from repro.protocols.backoff import BinaryExponentialBackoff
from repro.protocols.decay import DecayProtocol
from repro.protocols.restart import FallbackPlayerProtocol, RestartProtocol
from repro.protocols.willard import WillardProtocol


class TestSelectUniformEngine:
    def test_schedule_protocols_hit_the_schedule_engine(self):
        assert select_uniform_engine(DecayProtocol(256)) == ENGINE_BATCH_SCHEDULE

    def test_cd_search_hits_the_history_engine(self):
        assert select_uniform_engine(WillardProtocol(256)) == ENGINE_BATCH_HISTORY

    def test_batch_false_forces_scalar(self):
        assert (
            select_uniform_engine(DecayProtocol(256), False)
            == ENGINE_SCALAR_UNIFORM
        )

    def test_factories_run_scalar(self):
        assert (
            select_uniform_engine(lambda: DecayProtocol(256))
            == ENGINE_SCALAR_UNIFORM
        )

    def test_batch_true_on_factory_raises(self):
        with pytest.raises(ValueError, match="batch=True"):
            select_uniform_engine(lambda: DecayProtocol(256), True)


def _fallback_protocol() -> FallbackPlayerProtocol:
    """A genuinely non-batchable combinator: one half has randomized
    sessions (a factory restart), so no batch sessions exist."""
    return FallbackPlayerProtocol(
        BinaryExponentialBackoff(),
        UniformAsPlayerProtocol(RestartProtocol(lambda: WillardProtocol(64))),
        budget_rounds=16,
    )


class TestSelectPlayerEngine:
    """select_player_engine mirrors select_uniform_engine semantics."""

    def test_batchable_protocols_hit_the_player_engine(self):
        assert (
            select_player_engine(BinaryExponentialBackoff())
            == ENGINE_BATCH_PLAYER
        )

    def test_batch_false_forces_scalar(self):
        assert (
            select_player_engine(BinaryExponentialBackoff(), False)
            == ENGINE_SCALAR_PLAYER
        )

    def test_fallback_combinator_batches_when_halves_do(self):
        protocol = FallbackPlayerProtocol(
            BinaryExponentialBackoff(),
            UniformAsPlayerProtocol(WillardProtocol(64)),
            budget_rounds=16,
        )
        assert select_player_engine(protocol) == ENGINE_BATCH_PLAYER

    def test_non_batchable_combinators_run_scalar(self):
        assert select_player_engine(_fallback_protocol()) == ENGINE_SCALAR_PLAYER

    def test_batch_true_on_non_batchable_raises(self):
        with pytest.raises(ValueError, match="batch=True"):
            select_player_engine(_fallback_protocol(), True)


class TestPlayerBatchContract:
    def _estimate(self, batch, protocol=None):
        adversary = RandomAdversary()
        return estimate_player_rounds(
            protocol if protocol is not None else BinaryExponentialBackoff(),
            lambda rng: adversary.checked_select(64, 3, rng),
            64,
            np.random.default_rng(0),
            channel=with_collision_detection(),
            trials=10,
            max_rounds=200,
            batch=batch,
        )

    def test_batch_true_on_non_batchable_raises(self):
        """batch=True insists on the vectorized engine - no silent (or
        warned) fallback, exactly like the uniform estimator."""
        with pytest.raises(ValueError, match="batch=True"):
            self._estimate(True, protocol=_fallback_protocol())

    def test_batch_true_runs_batchable_protocols(self):
        assert self._estimate(True).success.trials == 10

    def test_batch_none_and_false_both_complete(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            auto = self._estimate(None)
            scalar = self._estimate(False)
        assert auto.success.trials == scalar.success.trials == 10

    def test_batch_flag_ignored_for_non_batchable_protocols(self):
        """None/False must not perturb the scalar RNG stream or results."""
        protocol = _fallback_protocol()
        auto = self._estimate(None, protocol=protocol)
        assert auto.rounds == self._estimate(False, protocol=protocol).rounds
