"""Tests for the supervised executor, fault plans, and error reporting."""

import pytest

from repro.scenarios import (
    EXECUTORS,
    FaultPlan,
    ScenarioSpec,
    Sweep,
    SweepPointError,
    fault_plan_from_json,
    make_supervised_executor,
    register_executor,
    run_sweep,
    unregister_executor,
)
from repro.scenarios.spec import ScenarioError


def base_spec(**overrides) -> ScenarioSpec:
    data = {
        "name": "sv",
        "protocol": {"id": "decay", "params": {}},
        "workload": {"kind": "fixed", "params": {"k": 8}},
        "channel": "nocd",
        "n": 512,
        "trials": 40,
        "max_rounds": 256,
        "seed": 100,
    }
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


def small_sweep() -> Sweep:
    return Sweep(base=base_spec(), grid={"workload.params.k": [2, 4, 6]})


FAST = make_supervised_executor(timeout=2.0, retries=1, backoff=0.01)
NO_RETRY = make_supervised_executor(timeout=2.0, retries=0, backoff=0.01)


class TestFaultPlan:
    def test_directive_order_crash_hang_corrupt_then_clean(self):
        plan = FaultPlan(crash={0: 1}, hang={0: 1}, corrupt={0: 1})
        assert [plan.directive(0, a) for a in range(4)] == [
            "crash", "hang", "corrupt", None,
        ]
        assert plan.directive(1, 0) is None

    def test_remap_narrows_to_subset_and_drops_driver_fault(self):
        plan = FaultPlan(crash={2: 1}, hang={5: 2}, crash_driver_after=1)
        sub = plan.remap([2, 4, 5])
        assert sub.crash == {0: 1}
        assert sub.hang == {2: 2}
        assert sub.crash_driver_after is None

    def test_json_round_trip(self):
        plan = FaultPlan(crash={1: 2}, corrupt={0: 1},
                         crash_driver_after=3, hang_seconds=0.5)
        import json
        assert FaultPlan.from_dict(json.loads(
            json.dumps(plan.to_dict()))) == plan
        assert fault_plan_from_json('{"crash": {"1": 2}}') == FaultPlan(
            crash={1: 2}
        )

    def test_rejects_malformed_plans(self):
        with pytest.raises(ScenarioError, match="integer"):
            FaultPlan(crash={"x": 1})
        with pytest.raises(ScenarioError, match=">= 0"):
            FaultPlan(hang={-1: 1})
        with pytest.raises(ScenarioError, match="unknown fault plan field"):
            FaultPlan.from_dict({"kaboom": {}})
        with pytest.raises(ScenarioError, match="invalid fault plan JSON"):
            fault_plan_from_json("{nope")


class TestSupervisedRecovery:
    def test_clean_run_matches_serial(self):
        sweep = small_sweep()
        reference = run_sweep(sweep, executor="serial")
        supervised = run_sweep(sweep, executor=FAST, max_workers=2)
        assert supervised.results == reference.results
        assert supervised.executor == "supervised"
        assert supervised.failures == []

    def test_recovers_from_one_crash_per_point(self):
        sweep = small_sweep()
        reference = run_sweep(sweep, executor="serial")
        out = run_sweep(
            sweep,
            executor=FAST,
            max_workers=1,
            fault_plan=FaultPlan(crash={0: 1, 1: 1, 2: 1}),
        )
        assert out.results == reference.results
        assert out.failures == []

    def test_recovers_from_hang_via_timeout(self):
        sweep = small_sweep()
        reference = run_sweep(sweep, executor="serial")
        out = run_sweep(
            sweep,
            executor=make_supervised_executor(
                timeout=1.0, retries=1, backoff=0.01
            ),
            max_workers=1,
            fault_plan=FaultPlan(hang={1: 1}, hang_seconds=600),
        )
        assert out.results == reference.results
        assert out.failures == []

    def test_detects_and_retries_corrupted_results(self):
        sweep = small_sweep()
        reference = run_sweep(sweep, executor="serial")
        out = run_sweep(
            sweep,
            executor=FAST,
            max_workers=1,
            fault_plan=FaultPlan(corrupt={2: 1}),
        )
        assert out.results == reference.results
        assert out.failures == []

    def test_exhausted_retries_degrade_to_manifest(self):
        sweep = small_sweep()
        reference = run_sweep(sweep, executor="serial")
        out = run_sweep(
            sweep,
            executor=NO_RETRY,
            max_workers=1,
            fault_plan=FaultPlan(crash={1: 5}),
        )
        # Graceful degradation: the other points complete and return.
        assert out.results == [reference.results[0], reference.results[2]]
        assert len(out.failures) == 1
        failure = out.failures[0]
        assert failure["index"] == 1
        assert failure["attempts"] == 1
        assert "exit code" in failure["error"]
        assert failure["overrides"] == {"workload.params.k": 4}
        assert ScenarioSpec.from_dict(failure["spec"]) == sweep.points()[1]
        assert "failures=1" in out.render()
        assert "point 1" in out.render()

    def test_corruption_past_retries_lands_in_manifest(self):
        out = run_sweep(
            small_sweep(),
            executor=NO_RETRY,
            max_workers=1,
            fault_plan=FaultPlan(corrupt={0: 5}),
        )
        assert len(out.failures) == 1
        assert "corrupted result" in out.failures[0]["error"]

    def test_registered_by_default(self):
        assert "supervised" in EXECUTORS


class TestRegistry:
    def test_duplicate_registration_needs_replace(self):
        def fake(points, max_workers):
            raise AssertionError("never called")

        register_executor("reg-test", fake)
        try:
            with pytest.raises(ScenarioError, match="already registered"):
                register_executor("reg-test", fake)
            register_executor("reg-test", fake, replace=True)  # no raise
        finally:
            unregister_executor("reg-test")
        assert "reg-test" not in EXECUTORS

    def test_unregister_guards(self):
        with pytest.raises(ScenarioError, match="built-in"):
            unregister_executor("serial")
        with pytest.raises(ScenarioError, match="not registered"):
            unregister_executor("no-such-executor")


class TestSweepErrorReporting:
    """A failing point names its index, spec and grid overrides.

    An unknown protocol id passes spec validation (the registry is
    consulted at run time, so specs can be authored before their
    protocol is registered) but fails at execution - the one trigger
    that reaches every executor's failure path, including inside a
    process-pool worker.
    """

    def _failing_sweep(self) -> Sweep:
        return Sweep(
            base=base_spec(trials=5),
            grid={"protocol.id": ["decay", "no-such-protocol"]},
        )

    @pytest.mark.parametrize("executor", ["serial", "process", "fused"])
    def test_execution_failure_names_the_point(self, executor):
        sweep = self._failing_sweep()
        with pytest.raises(SweepPointError) as info:
            run_sweep(sweep, executor=executor, max_workers=2)
        error = info.value
        assert error.index == 1
        assert error.overrides == {"protocol.id": "no-such-protocol"}
        message = str(error)
        assert "sweep point 1" in message
        assert "no-such-protocol" in message
        assert "grid overrides" in message
        assert "point spec" in message  # full spec for standalone repro
        assert ScenarioSpec.from_dict(
            __import__("json").loads(
                message.split("point spec: ", 1)[1]
            )
        ) == sweep.points()[1]

    def test_supervised_reports_the_same_error_as_a_manifest(self):
        out = run_sweep(
            self._failing_sweep(), executor=NO_RETRY, max_workers=1
        )
        assert len(out.results) == 1
        assert len(out.failures) == 1
        failure = out.failures[0]
        assert failure["index"] == 1
        assert failure["overrides"] == {"protocol.id": "no-such-protocol"}
        assert "no-such-protocol" in failure["error"]

    def test_explicit_point_list_reports_empty_overrides(self):
        points = self._failing_sweep().points()
        with pytest.raises(SweepPointError) as info:
            run_sweep(points, executor="serial")
        assert info.value.index == 1
        assert info.value.overrides == {}
