"""Tests for the Sweep API and its executors."""

import pytest

from repro.scenarios import Sweep, SweepResult, derive_point_seeds, run_sweep
from repro.scenarios.spec import ScenarioError, ScenarioSpec


def base_spec(**overrides) -> ScenarioSpec:
    data = {
        "name": "sw",
        "protocol": {"id": "decay", "params": {}},
        "workload": {"kind": "fixed", "params": {"k": 8}},
        "channel": "nocd",
        "n": 512,
        "trials": 60,
        "max_rounds": 256,
        "seed": 100,
    }
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


class TestExpansion:
    def test_cartesian_product_in_grid_order(self):
        sweep = Sweep(
            base=base_spec(),
            grid={"workload.params.k": [2, 4], "trials": [10, 20]},
        )
        points = sweep.points()
        assert [(p.workload.params["k"], p.trials) for p in points] == [
            (2, 10), (2, 20), (4, 10), (4, 20),
        ]

    def test_vary_seed_derives_independent_spawned_seeds(self):
        """Point seeds come from SeedSequence.spawn (not base + index), so
        adjacent points get unrelated streams; the derived seed still
        lands in the point's spec for standalone reproduction."""
        points = Sweep(base=base_spec(), grid={"trials": [10, 20, 30]}).points()
        expected = derive_point_seeds(100, 3)
        assert [p.seed for p in points] == expected
        assert len(set(expected)) == 3
        assert expected != [100, 101, 102]

    def test_derived_seeds_are_deterministic_and_json_native(self):
        first = derive_point_seeds(42, 4)
        assert first == derive_point_seeds(42, 4)
        assert all(isinstance(seed, int) and seed >= 0 for seed in first)
        # A longer sweep extends, not reshuffles, the seed list.
        assert derive_point_seeds(42, 6)[:4] == first

    def test_vary_seed_off_keeps_base_seed(self):
        points = Sweep(
            base=base_spec(), grid={"trials": [10, 20]}, vary_seed=False
        ).points()
        assert [p.seed for p in points] == [100, 100]

    def test_grid_seed_wins_over_vary_seed(self):
        points = Sweep(base=base_spec(), grid={"seed": [7, 8]}).points()
        assert [p.seed for p in points] == [7, 8]

    def test_points_get_unique_labels(self):
        labels = [p.name for p in Sweep(base_spec(), {"trials": [1, 2]}).points()]
        assert labels == ["sw[0]", "sw[1]"]

    def test_empty_grid_is_single_point(self):
        assert len(Sweep(base=base_spec(), grid={}).points()) == 1

    def test_grid_validation(self):
        with pytest.raises(ScenarioError, match="must be a list"):
            Sweep(base=base_spec(), grid={"trials": 5})
        with pytest.raises(ScenarioError, match="non-empty"):
            Sweep(base=base_spec(), grid={"trials": []})

    def test_json_round_trip(self):
        sweep = Sweep(base=base_spec(), grid={"workload.params.k": [2, 3]})
        assert Sweep.from_json(sweep.to_json()) == sweep


class TestExecution:
    def test_serial_results_in_grid_order(self):
        sweep = Sweep(base=base_spec(), grid={"workload.params.k": [2, 4, 8]})
        result = run_sweep(sweep)
        assert result.executor == "serial" and len(result) == 3
        assert [r.spec.workload.params["k"] for r in result.results] == [2, 4, 8]

    def test_process_pool_matches_serial_exactly(self):
        """Executors are interchangeable: same points, same results."""
        sweep = Sweep(base=base_spec(), grid={"workload.params.k": [2, 5, 9]})
        serial = run_sweep(sweep, executor="serial")
        pooled = run_sweep(sweep, executor="process", max_workers=2)
        assert serial.results == pooled.results

    def test_unknown_executor(self):
        with pytest.raises(ScenarioError, match="unknown executor"):
            run_sweep(Sweep(base=base_spec(), grid={}), executor="quantum")

    def test_explicit_point_list(self):
        result = run_sweep([base_spec(), base_spec(seed=9)])
        assert len(result) == 2

    def test_result_round_trip_and_render(self):
        result = run_sweep(Sweep(base=base_spec(), grid={"trials": [10, 20]}))
        restored = SweepResult.from_dict(result.to_dict())
        assert restored.results == result.results
        text = result.render()
        assert "2 point(s)" in text and "sw[0]" in text
