"""Tests for the declarative spec layer: construction, JSON, overrides."""

import pytest

from repro.scenarios.spec import (
    AdviceSpec,
    ChannelSpec,
    PredictionSpec,
    ProtocolSpec,
    ScenarioError,
    ScenarioSpec,
    WorkloadSpec,
)


def make_spec(**overrides) -> ScenarioSpec:
    base = dict(
        protocol=ProtocolSpec("decay"),
        workload=WorkloadSpec("fixed", {"k": 8}),
        channel=ChannelSpec(collision_detection=False),
        n=1024,
        trials=100,
        max_rounds=256,
        seed=11,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestSubSpecs:
    def test_protocol_shorthand(self):
        assert ProtocolSpec.from_dict("decay") == ProtocolSpec("decay")

    def test_protocol_unknown_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown protocol spec"):
            ProtocolSpec.from_dict({"id": "decay", "prams": {}})

    def test_channel_shorthands(self):
        assert ChannelSpec.from_dict("cd").collision_detection
        assert not ChannelSpec.from_dict("nocd").collision_detection
        assert not ChannelSpec.from_dict("no-cd").collision_detection
        with pytest.raises(ScenarioError, match="shorthand"):
            ChannelSpec.from_dict("loud")

    def test_prediction_shorthand(self):
        assert PredictionSpec.from_dict("truth") == PredictionSpec("truth")

    def test_advice_negative_bits_rejected(self):
        with pytest.raises(ScenarioError, match="bits"):
            AdviceSpec(function="null", bits=-1)


class TestScenarioSpec:
    def test_validation(self):
        with pytest.raises(ScenarioError, match="trials"):
            make_spec(trials=0)
        with pytest.raises(ScenarioError, match="max_rounds"):
            make_spec(max_rounds=0)
        with pytest.raises(ScenarioError, match="n must"):
            make_spec(n=1)

    def test_json_round_trip_is_identity(self):
        spec = make_spec(
            prediction=PredictionSpec("distribution", {"family": "geometric"}),
            advice=AdviceSpec(
                "min-id-prefix", 3, {"model": "bit-flip", "probability": 0.1}
            ),
            batch=False,
            name="rt",
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_from_dict_requires_core_fields(self):
        with pytest.raises(ScenarioError, match="'workload'"):
            ScenarioSpec.from_dict(
                {
                    "protocol": "decay",
                    "channel": "nocd",
                    "n": 64,
                    "trials": 10,
                    "max_rounds": 8,
                }
            )

    def test_from_dict_rejects_unknown_fields(self):
        data = make_spec().to_dict()
        data["trails"] = 5
        with pytest.raises(ScenarioError, match="'trails'"):
            ScenarioSpec.from_dict(data)

    def test_invalid_json_reports_cleanly(self):
        with pytest.raises(ScenarioError, match="invalid scenario JSON"):
            ScenarioSpec.from_json("{nope")

    def test_override_dotted_paths(self):
        spec = make_spec()
        derived = spec.override(
            {"trials": 500, "workload.params.k": 3, "protocol.params.cycle": False}
        )
        assert derived.trials == 500
        assert derived.workload.params["k"] == 3
        assert derived.protocol.params == {"cycle": False}
        # the original is untouched (specs are immutable values)
        assert spec.trials == 100 and spec.protocol.params == {}

    def test_override_creates_intermediate_mappings(self):
        derived = make_spec().override({"prediction.source": "truth"})
        assert derived.prediction == PredictionSpec("truth")

    def test_override_revalidates(self):
        with pytest.raises(ScenarioError, match="trials"):
            make_spec().override({"trials": 0})

    def test_label(self):
        assert make_spec().label() == "decay/fixed"
        assert make_spec(name="x").label() == "x"


class TestChannelModelSpec:
    """The channel-model slot: eager validation, resolution, round-trip."""

    def test_shorthand_keeps_model_none(self):
        assert ChannelSpec.from_dict("cd").model is None
        assert ChannelSpec.from_dict("nocd").build_model() is None

    def test_model_round_trips_through_dicts(self):
        data = {
            "collision_detection": True,
            "model": {"name": "jam-oblivious", "params": {"budget": 4}},
        }
        spec = ChannelSpec.from_dict(data)
        assert spec.to_dict() == data
        assert ChannelSpec.from_dict(spec.to_dict()) == spec

    def test_model_omitted_from_dict_when_absent(self):
        assert ChannelSpec(collision_detection=True).to_dict() == {
            "collision_detection": True
        }

    def test_build_model_resolves_the_registry_model(self):
        from repro.channel import NoisyChannel

        spec = ChannelSpec.from_dict(
            {
                "collision_detection": False,
                "model": {"name": "noise", "params": {"success_erasure": 0.2}},
            }
        )
        assert spec.build_model() == NoisyChannel(success_erasure=0.2)

    def test_scenario_json_round_trip_with_model(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "jammed",
                "protocol": {"id": "decay", "params": {}},
                "workload": {"kind": "fixed", "params": {"k": 4}},
                "channel": {
                    "collision_detection": False,
                    "model": {"name": "jam-reactive",
                              "params": {"budget": 2, "quiet_streak": 3}},
                },
                "n": 1024,
                "trials": 50,
                "max_rounds": 128,
                "seed": 7,
            }
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize(
        "model,complaint",
        [
            ({"name": "nope"}, "unknown channel model"),
            ({"name": "noise", "params": {"bogus": 1}}, "unknown parameter"),
            ({"name": "jam-oblivious", "params": {"budget": -1}}, "budget"),
            ({"name": "noise", "params": {"success_erasure": 1.5}},
             r"\[0, 1\]"),
            ("noise", "mapping"),
            ({"name": "crash", "extra": True}, "allowed: name, params"),
        ],
    )
    def test_malformed_models_fail_at_parse_time(self, model, complaint):
        """Validation is eager: a bad model spec raises ScenarioError
        before any point of a sweep runs."""
        with pytest.raises(ScenarioError, match=complaint):
            ChannelSpec.from_dict(
                {"collision_detection": True, "model": model}
            )

    def test_dotted_override_reaches_model_params(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "jammed",
                "protocol": {"id": "decay", "params": {}},
                "workload": {"kind": "fixed", "params": {"k": 4}},
                "channel": {
                    "collision_detection": False,
                    "model": {"name": "jam-oblivious", "params": {"budget": 0}},
                },
                "n": 1024,
                "trials": 50,
                "max_rounds": 128,
                "seed": 7,
            }
        )
        bumped = spec.override({"channel.model.params.budget": 9})
        assert bumped.channel.model["params"]["budget"] == 9
        assert spec.channel.model["params"]["budget"] == 0  # original intact
