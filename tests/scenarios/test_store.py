"""Tests for the durability layer: content-addressed store and journal."""

import json

import pytest

from repro.scenarios import (
    OpenScenarioSpec,
    ResultStore,
    ScenarioSpec,
    SweepJournal,
    run_scenario,
    spec_key,
    sweep_key,
)
from repro.scenarios.runner import ScenarioResult
from repro.scenarios.spec import ScenarioError
from repro.scenarios import store as store_module


def base_spec(**overrides) -> ScenarioSpec:
    data = {
        "name": "st",
        "protocol": {"id": "decay", "params": {}},
        "workload": {"kind": "fixed", "params": {"k": 8}},
        "channel": "nocd",
        "n": 512,
        "trials": 40,
        "max_rounds": 256,
        "seed": 100,
    }
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


def open_spec() -> OpenScenarioSpec:
    return OpenScenarioSpec.from_dict(
        {
            "protocol": {"id": "decay"},
            "arrivals": {"family": "poisson", "params": {"rate": 0.2}},
            "channel": "cd",
            "n": 64,
            "trials": 4,
            "rounds": 64,
            "seed": 5,
        }
    )


class TestSpecKey:
    def test_round_trip_same_key(self):
        spec = base_spec()
        again = ScenarioSpec.from_dict(json.loads(spec.to_json()))
        assert spec_key(spec) == spec_key(again)

    def test_any_field_change_changes_key(self):
        spec = base_spec()
        for path, value in [
            ("seed", 101),
            ("trials", 41),
            ("workload.params.k", 9),
            ("channel.model", {"name": "jam-oblivious",
                               "params": {"budget": 4}}),
            ("protocol.params.one_shot", True),
        ]:
            assert spec_key(spec.override({path: value})) != spec_key(spec)

    def test_open_and_closed_specs_never_collide(self):
        # Same hash function, disjoint key spaces: the payload tags the
        # spec family.
        assert spec_key(open_spec()) != spec_key(base_spec())

    def test_open_spec_policy_changes_change_key(self):
        spec = open_spec()
        assert spec_key(spec.override({"retry.kind": "immediate"})) != spec_key(spec)
        assert spec_key(
            spec.override({"admission.kind": "shed",
                           "admission.params.threshold": 0.5})
        ) != spec_key(spec)

    def test_schema_version_is_part_of_the_key(self, monkeypatch):
        spec = base_spec()
        before = spec_key(spec)
        monkeypatch.setattr(store_module, "SCHEMA_VERSION", 999)
        assert spec_key(spec) != before

    def test_sweep_key_pins_order_and_content(self):
        keys = [spec_key(base_spec(seed=s)) for s in (1, 2, 3)]
        assert sweep_key(keys) == sweep_key(list(keys))
        assert sweep_key(keys[::-1]) != sweep_key(keys)
        assert sweep_key(keys[:2]) != sweep_key(keys)


class TestResultStore:
    def test_memory_only_round_trip(self):
        spec = base_spec()
        result = run_scenario(spec)
        store = ResultStore()
        assert store.get(spec) is None
        store.put(spec, result)
        assert store.get(spec) == result
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.memory_hits == 1

    def test_disk_round_trip_across_instances(self, tmp_path):
        spec = base_spec()
        result = run_scenario(spec)
        ResultStore(tmp_path).put(spec, result)
        fresh = ResultStore(tmp_path)
        loaded = fresh.get(spec)
        assert loaded == result
        assert loaded.engine == result.engine
        assert fresh.stats.memory_hits == 0  # came from disk

    def test_open_results_round_trip(self, tmp_path):
        from repro.scenarios import run_open_scenario

        spec = open_spec()
        result = run_open_scenario(spec)
        ResultStore(tmp_path).put(spec, result)
        assert ResultStore(tmp_path).get(spec) == result

    def test_lru_evicts_oldest(self):
        store = ResultStore(memory_items=2)
        specs = [base_spec(seed=s) for s in (1, 2, 3)]
        result = run_scenario(specs[0])
        for spec in specs:
            store.put(spec, result)
        assert store.get(specs[0]) is None  # evicted (memory-only store)
        assert store.get(specs[2]) is not None

    def test_schema_stale_entry_misses_cleanly(self, tmp_path):
        spec = base_spec()
        store = ResultStore(tmp_path, memory_items=0)
        key = store.put(spec, run_scenario(spec))
        path = tmp_path / key[:2] / f"{key}.json"
        payload = json.loads(path.read_text())
        payload["schema"] = 0
        path.write_text(json.dumps(payload))
        assert store.get(spec) is None

    def test_truncated_entry_misses_cleanly(self, tmp_path):
        spec = base_spec()
        store = ResultStore(tmp_path, memory_items=0)
        key = store.put(spec, run_scenario(spec))
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get(spec) is None

    def test_coerce(self, tmp_path):
        store = ResultStore()
        assert ResultStore.coerce(store) is store
        assert ResultStore.coerce(None) is None
        assert ResultStore.coerce(tmp_path).cache_dir == tmp_path
        with pytest.raises(ScenarioError, match="cache must be"):
            ResultStore.coerce(42)


class TestSweepJournal:
    def _journal(self, path, keys, **overrides):
        kwargs = dict(
            sweep=sweep_key(keys),
            points=len(keys),
            point_keys=keys,
            result_from_dict=ScenarioResult.from_dict,
        )
        kwargs.update(overrides)
        return SweepJournal(path, **kwargs)

    def test_append_then_replay(self, tmp_path):
        specs = [base_spec(seed=s) for s in (1, 2)]
        keys = [spec_key(spec) for spec in specs]
        results = [run_scenario(spec) for spec in specs]
        path = tmp_path / "j.jsonl"
        with self._journal(path, keys) as journal:
            assert journal.replayed == {}
            journal.append([(0, results[0].to_dict())])
        with self._journal(path, keys) as journal:
            assert journal.replayed == {0: results[0]}
            journal.append([(1, results[1].to_dict())])
        with self._journal(path, keys) as journal:
            assert journal.replayed == {0: results[0], 1: results[1]}

    def test_group_append_is_one_line(self, tmp_path):
        specs = [base_spec(seed=s) for s in (1, 2, 3)]
        keys = [spec_key(spec) for spec in specs]
        results = [run_scenario(spec) for spec in specs]
        path = tmp_path / "j.jsonl"
        with self._journal(path, keys) as journal:
            journal.append([(i, results[i].to_dict()) for i in range(3)])
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # header + one atomic group checkpoint
        with self._journal(path, keys) as journal:
            assert sorted(journal.replayed) == [0, 1, 2]

    def test_torn_final_line_is_dropped(self, tmp_path):
        specs = [base_spec(seed=s) for s in (1, 2)]
        keys = [spec_key(spec) for spec in specs]
        results = [run_scenario(spec) for spec in specs]
        path = tmp_path / "j.jsonl"
        with self._journal(path, keys) as journal:
            journal.append([(0, results[0].to_dict())])
            journal.append([(1, results[1].to_dict())])
        text = path.read_text()
        # Simulate a crash mid-append: cut the final line in half.
        torn = text[: len(text) - len(text.splitlines()[-1]) // 2 - 1]
        path.write_text(torn)
        with self._journal(path, keys) as journal:
            assert sorted(journal.replayed) == [0]

    def test_interior_corruption_is_an_error(self, tmp_path):
        specs = [base_spec(seed=s) for s in (1, 2)]
        keys = [spec_key(spec) for spec in specs]
        results = [run_scenario(spec) for spec in specs]
        path = tmp_path / "j.jsonl"
        with self._journal(path, keys) as journal:
            journal.append([(0, results[0].to_dict())])
            journal.append([(1, results[1].to_dict())])
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # torn but NOT final
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ScenarioError, match="corrupt at line 2"):
            self._journal(path, keys)

    def test_different_sweep_is_refused(self, tmp_path):
        keys = [spec_key(base_spec(seed=s)) for s in (1, 2)]
        other = [spec_key(base_spec(seed=s)) for s in (3, 4)]
        path = tmp_path / "j.jsonl"
        self._journal(path, keys).close()
        with pytest.raises(ScenarioError, match="different sweep"):
            self._journal(path, other)

    def test_future_schema_is_refused(self, tmp_path):
        keys = [spec_key(base_spec())]
        path = tmp_path / "j.jsonl"
        self._journal(path, keys).close()
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema"] = 999
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(ScenarioError, match="schema"):
            self._journal(path, keys)

    def test_mismatched_point_key_is_refused(self, tmp_path):
        specs = [base_spec(seed=s) for s in (1, 2)]
        keys = [spec_key(spec) for spec in specs]
        path = tmp_path / "j.jsonl"
        with self._journal(path, keys) as journal:
            journal.append([(0, run_scenario(specs[0]).to_dict())])
        swapped = [keys[1], keys[0]]
        # Forge the header so only the per-entry key check can catch it.
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["sweep"] = sweep_key(swapped)
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(ScenarioError, match="mismatched spec key"):
            self._journal(path, swapped)
