"""Fused executor: partitioning, bit-identity with serial, and labels.

The fused executor's contract is *exact* agreement with the serial
reference on every point's statistics: each point draws from its own
seed-derived generator in precisely the order a solo run would, whether
its rounds execute stacked or alone.  The only permitted difference is
the recorded engine label (``fused-schedule`` / ``fused-history`` /
``fused-player`` records what actually executed).  These tests sweep the
registry protocol families across channels and workloads, mix compatible
and incompatible points in one grid, and unit-test the compatibility
analyzer itself.
"""

from __future__ import annotations

import pytest

from repro.analysis.montecarlo import (
    ENGINE_BATCH_HISTORY,
    ENGINE_BATCH_PLAYER,
    ENGINE_BATCH_SCHEDULE,
    ENGINE_FUSED_HISTORY,
    ENGINE_FUSED_PLAYER,
    ENGINE_FUSED_SCHEDULE,
    ENGINE_SCALAR_UNIFORM,
)
from repro.scenarios import (
    ScenarioSpec,
    Sweep,
    fusion_groups,
    fusion_key,
    run_sweep,
)
from repro.scenarios.runner import resolve_scenario

#: Serial label -> the label the fused executor stamps on stacked points.
_FUSED_LABEL = {
    ENGINE_BATCH_SCHEDULE: ENGINE_FUSED_SCHEDULE,
    ENGINE_BATCH_HISTORY: ENGINE_FUSED_HISTORY,
    ENGINE_BATCH_PLAYER: ENGINE_FUSED_PLAYER,
}


def assert_identical_results(sweep: Sweep) -> list[str]:
    """Run serial and fused; assert per-point statistics are identical.

    Returns the fused engine labels (for callers asserting what fused).
    """
    serial = run_sweep(sweep, executor="serial")
    fused = run_sweep(sweep, executor="fused")
    assert len(serial.results) == len(fused.results)
    for point_serial, point_fused in zip(serial.results, fused.results):
        label = point_serial.spec.label()
        assert point_fused.spec == point_serial.spec, label
        assert point_fused.rounds == point_serial.rounds, label
        assert point_fused.success == point_serial.success, label
        strip = lambda meta: {k: v for k, v in meta.items() if k != "engine"}
        assert strip(point_fused.metadata) == strip(point_serial.metadata), label
        # The engine label may only change along the documented mapping.
        assert point_fused.engine in (
            point_serial.engine,
            _FUSED_LABEL.get(point_serial.engine),
        ), label
    return [point.engine for point in fused.results]


def uniform_base(**overrides) -> ScenarioSpec:
    data = {
        "name": "fz",
        "protocol": {"id": "decay", "params": {}},
        "workload": {"kind": "fixed", "params": {"k": 8}},
        "channel": "nocd",
        "n": 1024,
        "trials": 90,
        "max_rounds": 300,
        "seed": 11,
    }
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


def player_base(**overrides) -> ScenarioSpec:
    data = {
        "name": "fz-p",
        "protocol": {"id": "tree-descent", "params": {"advice_bits": 3}},
        "workload": {"kind": "fixed", "params": {"k": 5}},
        "channel": "cd",
        "advice": {"function": "min-id-prefix", "bits": 3},
        "adversary": "random",
        "n": 256,
        "trials": 80,
        "max_rounds": 120,
        "seed": 17,
    }
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


SCHEDULE_GRIDS = [
    (
        "decay/nocd/fixed-k",
        uniform_base(),
        {"workload.params.k": [2, 4, 8, 16, 32]},
    ),
    (
        "decay/cd-channel",
        uniform_base(channel="cd"),
        {"workload.params.k": [3, 9, 27]},
    ),
    (
        "fixed-probability/p-sweep",
        uniform_base(protocol={"id": "fixed-probability", "params": {"k_hat": 8}}),
        {"protocol.params.k_hat": [4.0, 8.0, 16.0, 32.0]},
    ),
    (
        "sorted-probing/distribution",
        uniform_base(
            protocol={"id": "sorted-probing", "params": {"one_shot": False}},
            prediction="truth",
            workload={
                "kind": "distribution",
                "params": {"family": "range_uniform_subset", "ranges": [2, 5]},
            },
        ),
        {"workload.params.ranges": [[2], [5], [2, 5], [3, 6], [2, 4, 7]]},
    ),
    (
        "sorted-probing/one-shot-horizons",
        uniform_base(
            protocol={"id": "sorted-probing", "params": {"one_shot": True}},
            prediction="truth",
            workload={
                "kind": "distribution",
                "params": {"family": "range_uniform_subset", "ranges": [2, 5]},
            },
        ),
        # Different range sets give one-shot schedules of different
        # lengths: mixed horizons inside a single fused group.
        {"workload.params.ranges": [[2], [2, 5], [2, 4, 7]]},
    ),
    (
        "truncated-decay/advice-blocks",
        uniform_base(
            protocol={
                "id": "truncated-decay",
                "params": {"advice_bits": 2, "k": 8},
            }
        ),
        {"protocol.params.k": [2, 8, 30], "workload.params.k": [2, 8]},
    ),
    (
        "restart(one-shot)/cycling",
        uniform_base(
            protocol={
                "id": "restart",
                "params": {"inner": {"id": "decay", "params": {"cycle": False}}},
            }
        ),
        {"workload.params.k": [4, 12]},
    ),
    (
        "bursty-workload",
        uniform_base(
            workload={
                "kind": "bursty",
                "params": {
                    "calm_rate": 0.004,
                    "burst_rate": 0.2,
                    "burst_arrival": 0.05,
                    "burst_departure": 0.2,
                },
            }
        ),
        {"workload.params.burst_rate": [0.1, 0.2, 0.4]},
    ),
    (
        "trace-workload",
        uniform_base(workload={"kind": "trace", "params": {"ks": [4, 9]}}),
        {"workload.params.ks": [[4, 9], [2, 2, 17], [30]]},
    ),
    (
        "explicit-seed-sweep",
        uniform_base(),
        {"seed": [1, 2, 3, 4]},
    ),
]


HISTORY_GRIDS = [
    (
        "willard/fixed-k",
        uniform_base(protocol="willard", channel="cd"),
        {"workload.params.k": [2, 5, 30, 200]},
    ),
    (
        "willard/repetitions-and-k",
        uniform_base(protocol="willard", channel="cd"),
        {
            "protocol.params.repetitions": [1, 3, 5],
            "workload.params.k": [4, 64],
        },
    ),
    (
        # One-shot searches exhaust mid-stack: give-up bookkeeping
        # (rounds actually played) must survive fusion bit for bit.
        "willard/one-shot-exhaustion",
        uniform_base(
            protocol={
                "id": "willard",
                "params": {"restart": False, "repetitions": 1},
            },
            channel="cd",
            max_rounds=40,
        ),
        {"workload.params.k": [100, 500, 900]},
    ),
    (
        "code-search/prediction-quality",
        uniform_base(
            protocol={"id": "code-search", "params": {"one_shot": False}},
            channel="cd",
            prediction="truth",
            workload={
                "kind": "distribution",
                "params": {
                    "family": "range_uniform_subset",
                    "ranges": [2, 5, 8],
                },
            },
        ),
        {
            "prediction": [
                "truth",
                {"source": "distribution", "params": {"family": "uniform"}},
            ],
            "workload.params.ranges": [[2, 5, 8], [3, 6, 9]],
        },
    ),
    (
        "restart(one-shot-willard)/cycling",
        uniform_base(
            protocol={
                "id": "restart",
                "params": {
                    "inner": {
                        "id": "willard",
                        "params": {"restart": False, "repetitions": 1},
                    }
                },
            },
            channel="cd",
        ),
        {"workload.params.k": [3, 40]},
    ),
    (
        # Same protocol spec at every point: the stacked run shares one
        # memoized history trie across the whole group.
        "willard/seed-sweep",
        uniform_base(protocol="willard", channel="cd"),
        {"seed": [1, 2, 3, 4]},
    ),
    (
        "willard/bursty-workload",
        uniform_base(
            protocol="willard",
            channel="cd",
            workload={
                "kind": "bursty",
                "params": {
                    "calm_rate": 0.004,
                    "burst_rate": 0.2,
                    "burst_arrival": 0.05,
                    "burst_departure": 0.2,
                },
            },
        ),
        {"workload.params.burst_rate": [0.1, 0.2, 0.4]},
    ),
]


PLAYER_GRIDS = [
    (
        "tree-descent/bit-flip-curve",
        player_base(
            advice={
                "function": "min-id-prefix",
                "bits": 3,
                "corruption": {"model": "bit-flip", "probability": 0.0},
            }
        ),
        {"advice.corruption.probability": [0.0, 0.1, 0.25, 0.5, 0.9]},
    ),
    (
        "deterministic-scan/adversaries",
        player_base(
            protocol={"id": "deterministic-scan", "params": {"advice_bits": 3}},
            channel="nocd",
        ),
        {"adversary": ["random", "prefix", "suffix", "spread", "clustered"]},
    ),
    (
        "deterministic-scan/advice-families",
        player_base(
            protocol={"id": "deterministic-scan", "params": {"advice_bits": 3}},
            channel="nocd",
        ),
        {"advice.function": ["min-id-prefix", "range-block"]},
    ),
    (
        "fused-fallback/corruption-curve",
        player_base(
            protocol={
                "id": "fallback",
                "params": {
                    "primary": {
                        "id": "deterministic-scan",
                        "params": {"advice_bits": 3},
                    },
                    "fallback": {
                        "id": "deterministic-scan",
                        "params": {"advice_bits": 0},
                    },
                    "budget_rounds": "worst-case",
                },
            },
            channel="nocd",
            max_rounds=300,
        ),
        {
            "advice.corruption.probability": [0.0, 0.3, 0.8],
            "advice.corruption.model": ["bit-flip", "adversarial"],
        },
    ),
    (
        "player-seed-sweep",
        player_base(
            advice={
                "function": "min-id-prefix",
                "bits": 3,
                "corruption": {"model": "adversarial", "probability": 0.4},
            }
        ),
        {"seed": [5, 6, 7]},
    ),
]


class TestFusedSerialEquivalence:
    @pytest.mark.parametrize(
        "label,base,grid",
        SCHEDULE_GRIDS,
        ids=[case[0] for case in SCHEDULE_GRIDS],
    )
    def test_schedule_grids_bit_identical(self, label, base, grid):
        labels = assert_identical_results(Sweep(base=base, grid=grid))
        assert ENGINE_FUSED_SCHEDULE in labels, label

    @pytest.mark.parametrize(
        "label,base,grid",
        HISTORY_GRIDS,
        ids=[case[0] for case in HISTORY_GRIDS],
    )
    def test_history_grids_bit_identical(self, label, base, grid):
        labels = assert_identical_results(Sweep(base=base, grid=grid))
        assert ENGINE_FUSED_HISTORY in labels, label

    @pytest.mark.parametrize(
        "label,base,grid",
        PLAYER_GRIDS,
        ids=[case[0] for case in PLAYER_GRIDS],
    )
    def test_player_grids_bit_identical(self, label, base, grid):
        labels = assert_identical_results(Sweep(base=base, grid=grid))
        assert ENGINE_FUSED_PLAYER in labels, label

    def test_fused_history_point_reruns_identically_standalone(self):
        """A fused CD point re-run alone from its serialized spec must
        reproduce its statistics - trie sharing cannot leak anything."""
        from repro.scenarios import run_scenario

        sweep = Sweep(
            base=uniform_base(protocol="willard", channel="cd"),
            grid={"workload.params.k": [2, 9, 77]},
        )
        fused = run_sweep(sweep, executor="fused")
        assert all(
            point.engine == ENGINE_FUSED_HISTORY for point in fused.results
        )
        for point in fused.results:
            solo = run_scenario(ScenarioSpec.from_json(point.spec.to_json()))
            assert solo.rounds == point.rounds
            assert solo.success == point.success

    def test_fused_point_reruns_identically_standalone(self):
        """Any fused point re-run alone from its serialized spec must
        reproduce its statistics - fusion cannot leak across points."""
        from repro.scenarios import run_scenario

        sweep = Sweep(
            base=uniform_base(), grid={"workload.params.k": [2, 8, 32]}
        )
        fused = run_sweep(sweep, executor="fused")
        for point in fused.results:
            solo = run_scenario(ScenarioSpec.from_json(point.spec.to_json()))
            assert solo.rounds == point.rounds
            assert solo.success == point.success


class TestMixedGrids:
    def test_incompatible_points_fall_back_serially(self):
        """A grid mixing batch and forced-scalar points: the scalar
        points keep their serial label and exact results."""
        sweep = Sweep(
            base=uniform_base(trials=40),
            grid={"workload.params.k": [4, 8], "batch": [None, False]},
        )
        labels = assert_identical_results(sweep)
        assert labels.count(ENGINE_FUSED_SCHEDULE) == 2
        assert labels.count(ENGINE_SCALAR_UNIFORM) == 2

    def test_history_and_schedule_points_fuse_as_separate_groups(self):
        """One CD grid mixing decay (schedule engine) and Willard
        (history engine): each family stacks with its own kind."""
        sweep = Sweep(
            base=uniform_base(channel="cd", trials=40),
            grid={"protocol.id": ["decay", "willard"], "workload.params.k": [3, 9]},
        )
        labels = assert_identical_results(sweep)
        assert labels.count(ENGINE_FUSED_SCHEDULE) == 2
        assert labels.count(ENGINE_FUSED_HISTORY) == 2

    def test_singleton_history_point_stays_serial(self):
        """A lone history point has nothing to stack with: it runs (and
        is labelled) as a plain batch-history scenario."""
        sweep = Sweep(
            base=uniform_base(channel="cd", trials=40),
            grid={"protocol.id": ["decay", "willard"], "batch": [None]},
        )
        labels = assert_identical_results(sweep)
        assert labels == [ENGINE_BATCH_SCHEDULE, ENGINE_BATCH_HISTORY]

    def test_randomized_player_points_stay_serial(self):
        """Backoff batches within a point but cannot fuse across points
        (randomized sessions)."""
        sweep = Sweep(
            base=player_base(
                protocol={"id": "backoff", "params": {}},
                advice=None,
                trials=30,
            ),
            grid={"workload.params.k": [3, 6]},
        )
        labels = assert_identical_results(sweep)
        assert labels == [ENGINE_BATCH_PLAYER, ENGINE_BATCH_PLAYER]

    def test_differing_trials_split_schedule_groups(self):
        sweep = Sweep(
            base=uniform_base(),
            grid={"trials": [30, 60], "workload.params.k": [4, 8]},
        )
        labels = assert_identical_results(sweep)
        assert labels.count(ENGINE_FUSED_SCHEDULE) == 4  # two groups of two


class TestFusionAnalyzer:
    """Unit tests for fusion_key / fusion_groups on resolved points."""

    def _resolve(self, spec: ScenarioSpec):
        return resolve_scenario(spec)

    def test_schedule_points_share_a_key_across_params(self):
        a = self._resolve(uniform_base())
        b = self._resolve(
            uniform_base(
                protocol={"id": "fixed-probability", "params": {"k_hat": 9}},
                seed=99,
            )
        )
        assert fusion_key(a) == fusion_key(b) is not None

    def test_trials_budget_and_channel_split_schedule_keys(self):
        base = self._resolve(uniform_base())
        assert fusion_key(self._resolve(uniform_base(trials=91))) != fusion_key(base)
        assert fusion_key(self._resolve(uniform_base(max_rounds=301))) != fusion_key(base)
        assert fusion_key(self._resolve(uniform_base(channel="cd"))) != fusion_key(base)

    def test_player_keys_require_identical_protocol_spec(self):
        a = self._resolve(player_base())
        same = self._resolve(player_base(adversary="suffix", seed=3))
        other_params = self._resolve(
            player_base(
                protocol={"id": "tree-descent", "params": {"advice_bits": 2}},
                advice={"function": "min-id-prefix", "bits": 2},
            )
        )
        assert fusion_key(a) == fusion_key(same) is not None
        assert fusion_key(a) != fusion_key(other_params)

    def test_player_keys_split_on_prediction_spec(self):
        """Protocol construction consumes the prediction (via
        BuildContext), so player points differing only there must not
        share the first point's protocol object."""
        plain = self._resolve(player_base())
        predicted = self._resolve(
            player_base(
                prediction={
                    "source": "distribution",
                    "params": {"family": "uniform"},
                }
            )
        )
        assert fusion_key(plain) != fusion_key(predicted)

    def test_history_points_share_a_key_across_params(self):
        """Willard and code search on one CD channel fuse regardless of
        protocol params, prediction quality or workload - exactly the
        schedule-point rule, on the history engine."""
        a = self._resolve(uniform_base(protocol="willard", channel="cd"))
        b = self._resolve(
            uniform_base(
                protocol={"id": "willard", "params": {"repetitions": 5}},
                channel="cd",
                seed=99,
            )
        )
        assert fusion_key(a) == fusion_key(b) is not None

    def test_history_keys_never_collide_with_schedule_keys(self):
        """Decay and Willard on the same CD channel must not stack into
        one engine run - the key carries the engine family."""
        schedule = self._resolve(uniform_base(channel="cd"))
        history = self._resolve(uniform_base(protocol="willard", channel="cd"))
        assert fusion_key(schedule) is not None
        assert fusion_key(history) is not None
        assert fusion_key(schedule) != fusion_key(history)

    def test_trials_and_budget_split_history_keys(self):
        base = self._resolve(uniform_base(protocol="willard", channel="cd"))
        assert fusion_key(
            self._resolve(
                uniform_base(protocol="willard", channel="cd", trials=91)
            )
        ) != fusion_key(base)
        assert fusion_key(
            self._resolve(
                uniform_base(protocol="willard", channel="cd", max_rounds=301)
            )
        ) != fusion_key(base)

    def test_unfusable_points_get_no_key(self):
        scalar = self._resolve(uniform_base(batch=False))
        scalar_history = self._resolve(
            uniform_base(protocol="willard", channel="cd", batch=False)
        )
        randomized_player = self._resolve(
            player_base(protocol={"id": "backoff", "params": {}}, advice=None)
        )
        assert fusion_key(scalar) is None
        assert fusion_key(scalar_history) is None
        assert fusion_key(randomized_player) is None

    def test_groups_preserve_first_seen_order(self):
        resolved = [
            self._resolve(uniform_base(seed=1)),
            self._resolve(uniform_base(batch=False)),
            self._resolve(uniform_base(seed=2)),
            self._resolve(player_base(seed=1)),
            self._resolve(player_base(seed=2)),
        ]
        assert fusion_groups(resolved) == [[0, 2], [1], [3, 4]]


class TestAdversarialFusion:
    """Channel models in the fused executor: grouping and fallbacks."""

    def _jam_channel(self, budget: int) -> dict:
        return {
            "collision_detection": False,
            "model": {"name": "jam-oblivious", "params": {"budget": budget}},
        }

    def test_channel_models_split_fusion_groups(self):
        """Points differing in their fault model never stack into one
        engine run; a null model shares the faithful channel's group."""
        faithful = resolve_scenario(uniform_base())
        nulled = resolve_scenario(uniform_base(channel=self._jam_channel(0)))
        jam_two = resolve_scenario(uniform_base(channel=self._jam_channel(2)))
        jam_three = resolve_scenario(
            uniform_base(channel=self._jam_channel(3))
        )
        assert fusion_key(faithful) == fusion_key(nulled) is not None
        assert fusion_key(jam_two) not in (None, fusion_key(faithful))
        assert fusion_key(jam_three) not in (
            None, fusion_key(faithful), fusion_key(jam_two),
        )

    def test_jam_grid_bit_identical_and_grouped_by_model(self):
        """A budget x k grid fuses per budget (two groups of two) and
        reproduces the serial reference exactly."""
        sweep = Sweep(
            base=uniform_base(channel=self._jam_channel(0), trials=60),
            grid={
                "channel.model.params.budget": [0, 3],
                "workload.params.k": [4, 8],
            },
        )
        labels = assert_identical_results(sweep)
        assert labels == [ENGINE_FUSED_SCHEDULE] * 4

    def test_jammed_player_points_fuse(self):
        """Deterministic jammers consume no randomness, so player points
        carrying them still stack through the fused player engine."""
        sweep = Sweep(
            base=player_base(
                channel={
                    "collision_detection": True,
                    "model": {"name": "jam-reactive",
                              "params": {"budget": 2}},
                },
                trials=40,
            ),
            grid={"workload.params.k": [3, 6]},
        )
        labels = assert_identical_results(sweep)
        assert labels == [ENGINE_FUSED_PLAYER] * 2

    def test_noisy_player_points_stay_on_batch_player(self):
        """Random fault models need per-round draws, which the
        randomness-free stacked player engine cannot provide: the points
        run serially (each still batching internally) and match serial."""
        noisy = player_base(
            channel={
                "collision_detection": True,
                "model": {"name": "noise",
                          "params": {"success_erasure": 0.2}},
            },
            trials=40,
        )
        assert fusion_key(resolve_scenario(noisy)) is None
        sweep = Sweep(base=noisy, grid={"workload.params.k": [3, 6]})
        labels = assert_identical_results(sweep)
        assert labels == [ENGINE_BATCH_PLAYER] * 2

    def test_rejoin_crash_fuses_on_uniform_but_not_player_points(self):
        """A rejoin-delay crash shrinks the live population, which the
        uniform stacked engines absorb through the per-trial active-count
        bands - the points fuse and reproduce the solo batch runs exactly.
        The player engines have no shrinking path, so player points still
        fall back to the scalar loop."""
        from repro.analysis.montecarlo import ENGINE_SCALAR_PLAYER

        crash = uniform_base(
            channel={
                "collision_detection": False,
                "model": {"name": "crash",
                          "params": {"probability": 0.3, "rejoin_after": 2}},
            },
            trials=25,
        )
        assert fusion_key(resolve_scenario(crash)) is not None
        sweep = Sweep(base=crash, grid={"workload.params.k": [4, 8]})
        labels = assert_identical_results(sweep)
        assert labels == [ENGINE_FUSED_SCHEDULE] * 2

        player_crash = player_base(
            channel={
                "collision_detection": True,
                "model": {"name": "crash",
                          "params": {"probability": 0.2, "rejoin_after": 1}},
            },
            trials=20,
        )
        result = run_sweep(
            Sweep(base=player_crash, grid={}), executor="fused"
        ).results[0]
        assert result.engine == ENGINE_SCALAR_PLAYER

    def test_metadata_records_the_model(self):
        jammed = run_sweep(
            Sweep(base=uniform_base(channel=self._jam_channel(2), trials=30),
                  grid={}),
            executor="serial",
        ).results[0]
        assert jammed.metadata["channel_model"].startswith("jam-oblivious")
        faithful = run_sweep(
            Sweep(base=uniform_base(trials=30), grid={}), executor="serial"
        ).results[0]
        assert faithful.metadata["channel_model"] == "faithful"
