"""Tests for the protocol registry: coverage, building, validation."""

import pytest

from repro.core.predictions import Prediction
from repro.core.protocol import PlayerProtocol, UniformProtocol
from repro.infotheory.distributions import SizeDistribution
from repro.protocols.advice_deterministic import DeterministicScanProtocol
from repro.protocols.restart import FallbackPlayerProtocol, RestartProtocol
from repro.protocols.willard import WillardProtocol
from repro.scenarios.registry import (
    PLAYER,
    UNIFORM,
    BuildContext,
    build_protocol,
    get_protocol,
    protocol_ids,
)
from repro.scenarios.spec import ProtocolSpec, ScenarioError

N = 1024


def build(protocol_id: str, params: dict | None = None, *, prediction=None):
    context = BuildContext(n=N, prediction=prediction)
    return build_protocol(ProtocolSpec(protocol_id, params or {}), context)


def toy_prediction() -> Prediction:
    return Prediction(SizeDistribution.range_uniform_subset(N, [2, 5]))


class TestCoverage:
    def test_every_protocol_class_is_reachable(self):
        """The registry spans the whole protocols package."""
        expected = {
            "decay", "willard", "fixed-probability", "sorted-probing",
            "code-search", "phased-search", "truncated-decay",
            "truncated-willard", "restart", "backoff", "deterministic-scan",
            "tree-descent", "uniform-as-player", "fallback",
        }
        assert expected <= set(protocol_ids())

    def test_unknown_id_lists_options(self):
        with pytest.raises(ScenarioError, match="known ids"):
            get_protocol("carrier-sense")

    def test_kinds_route_to_engine_families(self):
        assert get_protocol("decay").kind == UNIFORM
        assert get_protocol("backoff").kind == PLAYER


class TestUniformBuilders:
    def test_decay_defaults_to_context_n(self):
        protocol = build("decay")
        assert protocol.n == N and protocol.cycle

    def test_willard_params(self):
        protocol = build("willard", {"repetitions": 5, "restart": False})
        assert isinstance(protocol, WillardProtocol)
        assert protocol.repetitions == 5 and not protocol.restart

    def test_fixed_probability_requires_k_hat(self):
        with pytest.raises(ScenarioError, match="k_hat"):
            build("fixed-probability")
        assert build("fixed-probability", {"k_hat": 16}).k_hat == 16.0

    def test_prediction_protocols_require_prediction(self):
        with pytest.raises(ScenarioError, match="needs a prediction"):
            build("sorted-probing")
        protocol = build("sorted-probing", prediction=toy_prediction())
        assert isinstance(protocol, UniformProtocol)

    def test_code_search_builds(self):
        protocol = build(
            "code-search", {"one_shot": False}, prediction=toy_prediction()
        )
        assert protocol.restart  # one_shot=False => restarting sweeps

    def test_truncated_protocols_take_k_or_block_index(self):
        by_k = build("truncated-decay", {"advice_bits": 2, "k": 40})
        by_block = build("truncated-decay", {"advice_bits": 2, "block_index": 1})
        assert by_k.block == by_block.block  # range 6 (k=40) sits in block 1
        with pytest.raises(ScenarioError, match="exactly one of"):
            build("truncated-decay", {"advice_bits": 2})
        with pytest.raises(ScenarioError, match="exactly one of"):
            build("truncated-willard", {"advice_bits": 2, "k": 8, "block_index": 0})

    def test_restart_wraps_inner_spec(self):
        protocol = build(
            "restart", {"inner": {"id": "decay", "params": {"cycle": False}}}
        )
        assert isinstance(protocol, RestartProtocol)

    def test_unknown_params_rejected(self):
        with pytest.raises(ScenarioError, match="cylce"):
            build("decay", {"cylce": False})


class TestPlayerBuilders:
    def test_scan_and_descent(self):
        scan = build("deterministic-scan", {"advice_bits": 3})
        assert isinstance(scan, DeterministicScanProtocol)
        descent = build("tree-descent", {"advice_bits": 3})
        assert isinstance(descent, PlayerProtocol)

    def test_uniform_as_player_requires_uniform_inner(self):
        protocol = build(
            "uniform-as-player", {"inner": {"id": "decay", "params": {}}}
        )
        assert isinstance(protocol, PlayerProtocol)
        with pytest.raises(ScenarioError, match="uniform inner"):
            build("uniform-as-player", {"inner": {"id": "backoff", "params": {}}})

    def test_fallback_worst_case_budget(self):
        protocol = build(
            "fallback",
            {
                "primary": {"id": "deterministic-scan", "params": {"advice_bits": 4}},
                "fallback": {
                    "id": "uniform-as-player",
                    "params": {"inner": {"id": "decay", "params": {}}},
                },
                "budget_rounds": "worst-case",
            },
        )
        assert isinstance(protocol, FallbackPlayerProtocol)
        assert protocol.budget_rounds == DeterministicScanProtocol(4).worst_case_rounds(N)

    def test_fallback_rejects_player_without_worst_case(self):
        with pytest.raises(ScenarioError, match="worst_case_rounds"):
            build(
                "fallback",
                {
                    "primary": {"id": "backoff", "params": {}},
                    "fallback": {
                        "id": "uniform-as-player",
                        "params": {"inner": {"id": "decay", "params": {}}},
                    },
                },
            )
