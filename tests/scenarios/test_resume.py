"""Crash-resume bit-identity and warm-cache tests for run_sweep.

The acceptance bar of the durability layer: a sweep interrupted at any
point (via the deterministic crash-injection harness) and resumed from
its journal produces results *identical* to one uninterrupted run, on
every executor; and a fully warm cache serves a sweep without invoking
any engine at all.
"""

import json

import pytest

from repro.scenarios import (
    FaultPlan,
    OpenScenarioSpec,
    OpenSweep,
    ResultStore,
    ScenarioSpec,
    SimulatedCrash,
    Sweep,
    make_supervised_executor,
    run_open_sweep,
    run_sweep,
)
from repro.scenarios.spec import ScenarioError
from repro.scenarios import sweep as sweep_module


def base_spec(**overrides) -> ScenarioSpec:
    data = {
        "name": "rz",
        "protocol": {"id": "decay", "params": {}},
        "workload": {"kind": "fixed", "params": {"k": 8}},
        "channel": "nocd",
        "n": 512,
        "trials": 40,
        "max_rounds": 256,
        "seed": 100,
    }
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


def serial_sweep() -> Sweep:
    return Sweep(base=base_spec(), grid={"workload.params.k": [2, 4, 6, 8]})


def fused_sweep() -> Sweep:
    # Two fusion groups of three (history + schedule on CD), so the
    # group-atomic checkpoints land at group boundaries.
    return Sweep(
        base=base_spec(channel="cd", n=256, trials=30, max_rounds=128),
        grid={"protocol.id": ["willard", "decay"],
              "workload.params.k": [2, 4, 6]},
    )


SUPERVISED_FAST = make_supervised_executor(timeout=30.0, retries=0)


def crash_then_resume(sweep, journal, *, k, executor, max_workers=None):
    """Run with an injected driver crash after ``k`` points, then resume."""
    with pytest.raises(SimulatedCrash):
        run_sweep(
            sweep,
            executor=executor,
            max_workers=max_workers,
            resume=journal,
            fault_plan=FaultPlan(crash_driver_after=k),
        )
    return run_sweep(
        sweep, executor=executor, max_workers=max_workers, resume=journal
    )


class TestCrashResumeBitIdentity:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_serial(self, tmp_path, k):
        sweep = serial_sweep()
        reference = run_sweep(sweep, executor="serial")
        resumed = crash_then_resume(
            sweep, tmp_path / "j.jsonl", k=k, executor="serial"
        )
        assert resumed.results == reference.results
        assert resumed.resumed == k
        assert resumed.failures == []

    @pytest.mark.parametrize("k", [0, 1, 3, 5])
    def test_fused(self, tmp_path, k):
        sweep = fused_sweep()
        reference = run_sweep(sweep, executor="fused")
        assert {r.engine for r in reference.results} == {
            "fused-history", "fused-schedule",
        }
        resumed = crash_then_resume(
            sweep, tmp_path / "j.jsonl", k=k, executor="fused"
        )
        # Bit-identical including the stacked engine labels: resumed
        # groups re-fuse whole, so no point degrades to a serial label.
        assert resumed.results == reference.results
        assert [r.engine for r in resumed.results] == [
            r.engine for r in reference.results
        ]
        # Checkpoints are group-atomic (groups of 3): the crash after k
        # landed on a group boundary at or past k.
        assert resumed.resumed % 3 == 0
        assert resumed.resumed >= min(k, 6)

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_supervised(self, tmp_path, k):
        sweep = serial_sweep()
        reference = run_sweep(sweep, executor="serial")
        resumed = crash_then_resume(
            sweep,
            tmp_path / "j.jsonl",
            k=k,
            executor=SUPERVISED_FAST,
            max_workers=1,
        )
        assert resumed.results == reference.results
        assert resumed.resumed == k
        assert resumed.failures == []

    def test_process_executor_resumes_too(self, tmp_path):
        sweep = serial_sweep()
        reference = run_sweep(sweep, executor="serial")
        resumed = crash_then_resume(
            sweep, tmp_path / "j.jsonl", k=2, executor="process", max_workers=2
        )
        assert resumed.results == reference.results
        assert resumed.resumed >= 2

    def test_torn_final_journal_line_reexecutes_that_point(self, tmp_path):
        sweep = serial_sweep()
        reference = run_sweep(sweep, executor="serial")
        journal = tmp_path / "j.jsonl"
        run_sweep(sweep, executor="serial", resume=journal)
        text = journal.read_text()
        last = text.splitlines()[-1]
        journal.write_text(text[: len(text) - len(last) // 2 - 1])
        resumed = run_sweep(sweep, executor="serial", resume=journal)
        assert resumed.resumed == 3
        assert resumed.results == reference.results

    def test_journal_of_a_different_grid_is_refused(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        run_sweep(serial_sweep(), executor="serial", resume=journal)
        other = Sweep(base=base_spec(), grid={"workload.params.k": [3, 5, 7, 9]})
        with pytest.raises(ScenarioError, match="different sweep"):
            run_sweep(other, executor="serial", resume=journal)

    def test_completed_journal_replays_everything(self, tmp_path):
        sweep = serial_sweep()
        journal = tmp_path / "j.jsonl"
        reference = run_sweep(sweep, executor="serial", resume=journal)
        replayed = run_sweep(sweep, executor="serial", resume=journal)
        assert replayed.resumed == 4
        assert replayed.results == reference.results


class TestCache:
    def test_warm_cache_runs_no_engine(self, tmp_path, monkeypatch):
        sweep = serial_sweep()
        cold = run_sweep(sweep, executor="serial", cache=tmp_path / "cache")
        assert cold.cache_hits == 0

        def explode(spec):
            raise AssertionError("engine invoked on a fully warm cache")

        monkeypatch.setattr(sweep_module, "run_scenario", explode)
        warm = run_sweep(sweep, executor="serial", cache=tmp_path / "cache")
        assert warm.cache_hits == len(warm.results) == 4
        assert warm.results == cold.results

    def test_partial_cache_executes_only_misses(self, tmp_path):
        sweep = serial_sweep()
        reference = run_sweep(sweep, executor="serial")
        store = ResultStore(tmp_path / "cache")
        points = sweep.points()
        for point, result in list(zip(points, reference.results))[:2]:
            store.put(point, result)
        mixed = run_sweep(sweep, executor="serial", cache=store)
        assert mixed.cache_hits == 2
        assert mixed.results == reference.results

    def test_cache_works_through_fused_and_keeps_labels(self, tmp_path):
        sweep = fused_sweep()
        cold = run_sweep(sweep, executor="fused", cache=tmp_path / "cache")
        warm = run_sweep(sweep, executor="fused", cache=tmp_path / "cache")
        assert warm.cache_hits == 6
        assert warm.results == cold.results
        assert [r.engine for r in warm.results] == [
            r.engine for r in cold.results
        ]

    def test_resume_backfills_the_cache(self, tmp_path):
        sweep = serial_sweep()
        journal = tmp_path / "j.jsonl"
        with pytest.raises(SimulatedCrash):
            run_sweep(
                sweep,
                executor="serial",
                resume=journal,
                fault_plan=FaultPlan(crash_driver_after=2),
            )
        run_sweep(
            sweep, executor="serial", resume=journal, cache=tmp_path / "cache"
        )
        warm = run_sweep(sweep, executor="serial", cache=tmp_path / "cache")
        assert warm.cache_hits == 4


class TestFaultPlanGuards:
    def test_worker_faults_need_a_supervising_executor(self):
        with pytest.raises(ScenarioError, match="does not supervise workers"):
            run_sweep(
                serial_sweep(),
                executor="serial",
                fault_plan=FaultPlan(crash={0: 1}),
            )

    def test_driver_crash_leaves_no_slot_unjournaled(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        with pytest.raises(SimulatedCrash):
            run_sweep(
                serial_sweep(),
                executor="serial",
                resume=journal,
                fault_plan=FaultPlan(crash_driver_after=0),
            )
        lines = journal.read_text().splitlines()
        assert len(lines) == 1  # header only: the crash preceded point 0
        assert json.loads(lines[0])["kind"] == "header"


def open_sweep() -> OpenSweep:
    base = OpenScenarioSpec.from_dict(
        {
            "name": "oz",
            "protocol": {"id": "decay"},
            "arrivals": {"family": "poisson", "params": {"rate": 0.2}},
            "channel": "cd",
            "n": 64,
            "trials": 4,
            "rounds": 64,
            "seed": 5,
        }
    )
    return OpenSweep(base=base, grid={"arrivals.params.rate": [0.1, 0.2, 0.3]})


class TestOpenSweepDurability:
    def test_truncated_journal_resumes_bit_identical(self, tmp_path):
        sweep = open_sweep()
        reference = run_open_sweep(sweep)
        journal = tmp_path / "j.jsonl"
        run_open_sweep(sweep, resume=journal)
        # Simulate a crash after the first point: drop the tail.
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:2]) + "\n")
        resumed = run_open_sweep(sweep, resume=journal)
        assert resumed.resumed == 1
        assert resumed.results == reference.results

    def test_warm_cache_serves_open_points(self, tmp_path):
        sweep = open_sweep()
        cold = run_open_sweep(sweep, cache=tmp_path / "cache")
        warm = run_open_sweep(sweep, cache=tmp_path / "cache")
        assert warm.cache_hits == 3
        assert warm.results == cold.results
        assert "cache_hits=3" in warm.render()
