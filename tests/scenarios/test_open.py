"""Tests for the open-system scenario layer: specs, runs, and sweeps."""

import json

import pytest

from repro.opensys import ENGINE_OPEN_HISTORY, ENGINE_OPEN_SCHEDULE
from repro.scenarios import (
    AdmissionSpec,
    ArrivalSpec,
    ChannelSpec,
    OpenScenarioResult,
    OpenScenarioSpec,
    OpenSweep,
    OpenSweepResult,
    ProtocolSpec,
    RetrySpec,
    ScenarioError,
    WorkloadSpec,
    resolve_open_scenario,
    run_open_scenario,
    run_open_sweep,
)
from repro.scenarios import (
    EXAMPLE_OPEN_RETRY_SWEEP,
    EXAMPLE_OPEN_SCENARIO,
    EXAMPLE_OPEN_SWEEP,
)
from repro.scenarios.workloads import resolve_workload


def spec(**overrides) -> OpenScenarioSpec:
    base = dict(
        protocol=ProtocolSpec(id="decay"),
        arrivals=ArrivalSpec(family="poisson", params={"rate": 0.15}),
        channel=ChannelSpec(collision_detection=False),
        n=128,
        trials=8,
        rounds=192,
        warmup=32,
        capacity=64,
        seed=2021,
    )
    base.update(overrides)
    return OpenScenarioSpec(**base)


class TestArrivalSpec:
    def test_validates_eagerly(self):
        with pytest.raises(ScenarioError, match="unknown arrival family"):
            ArrivalSpec(family="fractal")
        with pytest.raises(ScenarioError, match="requires parameter"):
            ArrivalSpec(family="poisson")
        with pytest.raises(ScenarioError, match="non-empty family"):
            ArrivalSpec(family="")

    def test_string_shorthand_needs_no_params(self):
        # No family is parameterless today, so shorthand still validates.
        with pytest.raises(ScenarioError):
            ArrivalSpec.from_dict("poisson")

    def test_round_trip(self):
        arrival = ArrivalSpec(family="zipf-hotspot", params={"rate": 0.2})
        assert ArrivalSpec.from_dict(arrival.to_dict()) == arrival


class TestPolicySpecs:
    def test_validate_eagerly(self):
        with pytest.raises(ScenarioError, match="unknown retry policy"):
            RetrySpec(kind="telepathy")
        with pytest.raises(ScenarioError, match="unknown parameter"):
            RetrySpec(kind="give-up", params={"base": 2})
        with pytest.raises(ScenarioError, match="non-empty kind"):
            RetrySpec(kind="")
        with pytest.raises(ScenarioError, match="unknown admission policy"):
            AdmissionSpec(kind="bouncer")
        with pytest.raises(ScenarioError, match="requires 'rate'"):
            AdmissionSpec(kind="token-bucket")
        with pytest.raises(ScenarioError, match="threshold"):
            AdmissionSpec(kind="shed", params={"threshold": 2.0})

    def test_string_shorthand(self):
        assert RetrySpec.from_dict("immediate") == RetrySpec(kind="immediate")
        assert AdmissionSpec.from_dict("capacity") == AdmissionSpec(
            kind="capacity"
        )

    def test_round_trip_and_build(self):
        retry = RetrySpec(
            kind="backoff", params={"base": 2, "cap": 32, "jitter": 4}
        )
        assert RetrySpec.from_dict(retry.to_dict()) == retry
        assert retry.build().cap == 32
        admission = AdmissionSpec(
            kind="token-bucket", params={"rate": 0.5, "burst": 2}
        )
        assert AdmissionSpec.from_dict(admission.to_dict()) == admission
        assert admission.build().rate == 0.5

    def test_defaults_are_the_pre_policy_behaviour(self):
        default = spec()
        assert default.retry == RetrySpec(kind="give-up")
        assert default.admission == AdmissionSpec(kind="capacity")
        # Old JSON (no policy keys) still loads to the defaults.
        payload = default.to_dict()
        del payload["retry"], payload["admission"]
        assert OpenScenarioSpec.from_dict(payload) == default


class TestSpecSerialization:
    def test_json_round_trip_is_exact(self):
        original = spec(
            timeout=50,
            batch=True,
            name="round-trip",
            arrivals=ArrivalSpec(
                family="bursty", params={"devices": 40, "thin": 0.1}
            ),
            retry=RetrySpec(
                kind="backoff", params={"base": 2, "cap": 16, "budget": 3}
            ),
            admission=AdmissionSpec(kind="shed", params={"threshold": 0.6}),
        )
        assert OpenScenarioSpec.from_json(original.to_json()) == original

    def test_from_dict_requires_core_fields(self):
        with pytest.raises(ScenarioError, match="needs 'arrivals'"):
            OpenScenarioSpec.from_dict(
                {
                    "protocol": {"id": "decay"},
                    "channel": "nocd",
                    "n": 64,
                    "trials": 2,
                    "rounds": 16,
                }
            )

    def test_rejects_unknown_keys_and_bad_bounds(self):
        payload = spec().to_dict()
        payload["mystery"] = 1
        with pytest.raises(ScenarioError, match="unknown"):
            OpenScenarioSpec.from_dict(payload)
        for field, value in (
            ("trials", 0),
            ("rounds", 0),
            ("warmup", 999),
            ("capacity", 0),
            ("timeout", 0),
        ):
            with pytest.raises(ScenarioError):
                spec(**{field: value})

    def test_override_re_validates_through_from_dict(self):
        derived = spec().override(
            {"arrivals.params.rate": 0.4, "channel.collision_detection": True}
        )
        assert derived.arrivals.params["rate"] == 0.4
        assert derived.channel.collision_detection is True
        with pytest.raises(ScenarioError):
            spec().override({"arrivals.family": "fractal"})

    def test_dotted_overrides_reach_the_policies(self):
        derived = spec().override(
            {
                "retry.kind": "immediate",
                "admission.kind": "token-bucket",
                "admission.params.rate": 0.5,
            }
        )
        assert derived.retry == RetrySpec(kind="immediate")
        assert derived.admission == AdmissionSpec(
            kind="token-bucket", params={"rate": 0.5}
        )
        backoff = spec(
            retry=RetrySpec(kind="backoff", params={"cap": 16})
        ).override({"retry.params.cap": 8})
        assert backoff.retry.params == {"cap": 8}
        with pytest.raises(ScenarioError):
            spec().override({"retry.kind": "telepathy"})

    def test_label_prefers_name(self):
        assert spec(name="x").label() == "x"
        assert spec().label() == "decay/poisson"


class TestResolution:
    def test_routes_schedule_and_history_engines(self):
        assert resolve_open_scenario(spec()).engine == ENGINE_OPEN_SCHEDULE
        cd = spec(
            protocol=ProtocolSpec(id="willard"),
            channel=ChannelSpec(collision_detection=True),
        )
        assert resolve_open_scenario(cd).engine == ENGINE_OPEN_HISTORY

    def test_rejects_player_protocols(self):
        with pytest.raises(ScenarioError, match="player protocol"):
            resolve_open_scenario(spec(protocol=ProtocolSpec(id="backoff")))

    def test_rejects_truth_predictions(self):
        from repro.scenarios import PredictionSpec

        bad = spec(
            protocol=ProtocolSpec(id="sorted-probing"),
            prediction=PredictionSpec(source="truth"),
        )
        with pytest.raises(ScenarioError, match="truth"):
            resolve_open_scenario(bad)

    def test_explicit_distribution_prediction_resolves(self):
        from repro.scenarios import PredictionSpec

        predicted = spec(
            protocol=ProtocolSpec(id="sorted-probing", params={"one_shot": False}),
            prediction=PredictionSpec(
                source="distribution",
                params={"family": "range_uniform_subset", "ranges": [2, 4]},
            ),
        )
        result = run_open_scenario(predicted)
        assert result.metadata["protocol"].startswith("sorted-probing")

    def test_rejects_non_batchable_crash_model(self):
        bad = spec(
            channel=ChannelSpec.from_dict(
                {
                    "collision_detection": False,
                    "model": {
                        "name": "crash",
                        "params": {"probability": 0.1, "rejoin_after": 2},
                    },
                }
            )
        )
        with pytest.raises(ScenarioError, match="rejoin"):
            resolve_open_scenario(bad)


class TestRunAndResult:
    def test_result_round_trips_and_renders(self):
        result = run_open_scenario(spec(name="demo"))
        again = OpenScenarioResult.from_dict(json.loads(result.to_json()))
        assert again.store == result.store
        assert again.spec == result.spec
        text = result.render()
        assert "demo" in text and "open-schedule" in text and "p99" in text

    def test_metadata_records_the_run_identity(self):
        result = run_open_scenario(spec())
        assert result.metadata["engine"] == ENGINE_OPEN_SCHEDULE
        assert result.metadata["offered_load"] == pytest.approx(0.15)
        assert result.metadata["channel"] == "no-CD"
        assert result.metadata["kind"] == "uniform"

    def test_batch_and_scalar_agree_through_the_scenario_layer(self):
        vectorized = run_open_scenario(spec())
        scalar = run_open_scenario(spec(batch=False))
        assert vectorized.store == scalar.store

    def test_policies_thread_through_the_scenario_layer(self):
        lively = spec(
            arrivals=ArrivalSpec(family="poisson", params={"rate": 0.5}),
            capacity=8,
            timeout=16,
            retry=RetrySpec(kind="backoff", params={"jitter": 4, "budget": 4}),
            admission=AdmissionSpec(kind="shed", params={"threshold": 0.3}),
        )
        result = run_open_scenario(lively)
        assert result.metadata["retry"].startswith("backoff")
        assert result.metadata["admission"].startswith("shed")
        assert result.store.retried > 0
        assert "retry=backoff" in result.render()
        scalar = run_open_scenario(
            OpenScenarioSpec.from_dict({**lively.to_dict(), "batch": False})
        )
        assert scalar.store == result.store


class TestSweep:
    def test_points_derive_seeds_and_names(self):
        sweep = OpenSweep(
            base=spec(), grid={"arrivals.params.rate": [0.1, 0.2, 0.3]}
        )
        points = sweep.points()
        assert [p.name for p in points] == ["point-0", "point-1", "point-2"]
        assert len({p.seed for p in points}) == 3
        pinned = OpenSweep(
            base=spec(), grid={"seed": [1, 2]}, vary_seed=True
        ).points()
        assert [p.seed for p in pinned] == [1, 2]

    def test_sweep_round_trip(self):
        sweep = OpenSweep(base=spec(), grid={"trials": [4, 8]})
        assert OpenSweep.from_json(sweep.to_json()) == sweep
        with pytest.raises(ScenarioError, match="non-empty"):
            OpenSweep(base=spec(), grid={"trials": []})

    def test_sweep_result_serializes_and_renders(self):
        result = run_open_sweep(
            OpenSweep(base=spec(trials=4), grid={"trials": [2, 4]})
        )
        assert len(result) == 2
        again = OpenSweepResult.from_dict(json.loads(result.to_json()))
        assert [r.store for r in again.results] == [
            r.store for r in result.results
        ]
        table = result.render()
        assert "p99" in table and "open-schedule" in table

    @pytest.mark.parametrize(
        "protocol_id,cd,rates",
        [
            ("decay", False, [0.05, 0.1, 0.2, 0.3]),
            ("willard", True, [0.02, 0.05, 0.1, 0.15]),
        ],
    )
    def test_latency_curve_is_monotone_in_load(self, protocol_id, cd, rates):
        """The acceptance curve: p50/p99 sojourn rise with offered load."""
        base = OpenScenarioSpec(
            protocol=ProtocolSpec(id=protocol_id),
            arrivals=ArrivalSpec(family="poisson", params={"rate": rates[0]}),
            channel=ChannelSpec(collision_detection=cd),
            n=128,
            trials=48,
            rounds=384,
            warmup=64,
            capacity=128,
            seed=2021,
        )
        result = run_open_sweep(
            OpenSweep(base=base, grid={"arrivals.params.rate": rates})
        )
        p50s = [r.summary.p50 for r in result.results]
        p99s = [r.summary.p99 for r in result.results]
        assert p50s == sorted(p50s), f"p50 not monotone in load: {p50s}"
        assert p99s == sorted(p99s), f"p99 not monotone in load: {p99s}"
        assert p99s[-1] > p99s[0], "tail latency must grow with load"


class TestExamples:
    def test_example_scenario_loads_and_runs(self):
        loaded = OpenScenarioSpec.from_dict(EXAMPLE_OPEN_SCENARIO)
        result = run_open_scenario(loaded.override({"trials": 4, "rounds": 128}))
        assert result.engine == ENGINE_OPEN_SCHEDULE

    def test_example_sweep_loads(self):
        sweep = OpenSweep.from_dict(EXAMPLE_OPEN_SWEEP)
        assert len(sweep.points()) == 4

    def test_retry_example_sweep_covers_the_policy_grid(self):
        sweep = OpenSweep.from_dict(EXAMPLE_OPEN_RETRY_SWEEP)
        points = sweep.points()
        assert len(points) == 6
        assert {p.retry.kind for p in points} == {
            "give-up", "immediate", "backoff",
        }
        assert all(p.admission.kind == "shed" for p in points)


class TestOpenWorkloadKinds:
    """Satellite: the arrival families double as closed workload kinds."""

    def test_poisson_workload_resolves_to_clamped_source(self):
        source = resolve_workload(
            WorkloadSpec(kind="poisson", params={"rate": 0.5}), n=64
        )
        import numpy as np

        draws = source.sample_many(np.random.default_rng(0), 500)
        assert draws.min() >= 2 and draws.max() <= 64

    def test_zipf_hotspot_workload_resolves(self):
        source = resolve_workload(
            WorkloadSpec(
                kind="zipf-hotspot",
                params={"rate": 0.3, "alpha": 1.0, "max_batch": 8},
            ),
            n=32,
        )
        assert "zipf-hotspot" in source.name

    def test_bad_parameters_surface_as_scenario_errors(self):
        with pytest.raises(ScenarioError, match="bad poisson workload"):
            resolve_workload(
                WorkloadSpec(kind="poisson", params={"rate": -1}), n=64
            )
        with pytest.raises(ScenarioError, match="unknown workload kind"):
            resolve_workload(WorkloadSpec(kind="beta"), n=64)

    def test_closed_scenario_runs_on_an_open_workload(self):
        from repro.scenarios import ScenarioSpec, run_scenario

        closed = ScenarioSpec.from_dict(
            {
                "protocol": {"id": "decay"},
                "workload": {"kind": "poisson", "params": {"rate": 4.0}},
                "channel": "nocd",
                "n": 64,
                "trials": 64,
                "max_rounds": 256,
                "seed": 2021,
            }
        )
        result = run_scenario(closed)
        assert result.success.rate > 0.9

    def test_grid_overrides_reach_dotted_workload_params(self):
        from repro.scenarios import ScenarioSpec, Sweep

        base = ScenarioSpec.from_dict(
            {
                "protocol": {"id": "decay"},
                "workload": {"kind": "poisson", "params": {"rate": 2.0}},
                "channel": "nocd",
                "n": 64,
                "trials": 8,
                "max_rounds": 128,
                "seed": 2021,
            }
        )
        sweep = Sweep(base=base, grid={"workload.params.rate": [1.0, 8.0]})
        rates = [p.workload.params["rate"] for p in sweep.points()]
        assert rates == [1.0, 8.0]
