"""Tests for run_scenario: engine routing, reproducibility, JSON results."""

import numpy as np
import pytest

from repro.analysis.montecarlo import (
    ENGINE_BATCH_HISTORY,
    ENGINE_BATCH_PLAYER,
    ENGINE_BATCH_SCHEDULE,
    ENGINE_SCALAR_PLAYER,
    ENGINE_SCALAR_UNIFORM,
)
from repro.scenarios import ScenarioResult, ScenarioSpec, run_scenario
from repro.scenarios.spec import ScenarioError


def spec_dict(**overrides) -> dict:
    base = {
        "name": "t",
        "protocol": {"id": "decay", "params": {}},
        "workload": {"kind": "fixed", "params": {"k": 8}},
        "channel": "nocd",
        "n": 1024,
        "trials": 120,
        "max_rounds": 400,
        "seed": 5,
    }
    base.update(overrides)
    return base


def run(**overrides) -> ScenarioResult:
    return run_scenario(ScenarioSpec.from_dict(spec_dict(**overrides)))


class TestEngineRouting:
    def test_schedule_protocol_routes_to_batch_schedule(self):
        assert run().engine == ENGINE_BATCH_SCHEDULE

    def test_cd_search_routes_to_history_engine(self):
        result = run(protocol={"id": "willard", "params": {}}, channel="cd")
        assert result.engine == ENGINE_BATCH_HISTORY

    def test_batch_false_forces_scalar(self):
        assert run(batch=False).engine == ENGINE_SCALAR_UNIFORM

    def test_batchable_player_protocol_routes_to_player_engine(self):
        result = run(
            protocol={"id": "backoff", "params": {}},
            channel="cd",
            workload={"kind": "fixed", "params": {"k": 4}},
        )
        assert result.engine == ENGINE_BATCH_PLAYER
        assert result.metadata["adversary"] == "random"

    def test_player_batch_false_forces_scalar_loop(self):
        result = run(
            protocol={"id": "backoff", "params": {}},
            channel="cd",
            workload={"kind": "fixed", "params": {"k": 4}},
            batch=False,
        )
        assert result.engine == ENGINE_SCALAR_PLAYER

    def test_fallback_combinator_routes_to_player_engine(self):
        """The fallback wrapper batches whenever both halves do (it was
        the last scalar-only combinator before the array-state phase
        tracking landed)."""
        result = run(
            protocol={
                "id": "fallback",
                "params": {
                    "primary": {"id": "backoff", "params": {}},
                    "fallback": {
                        "id": "uniform-as-player",
                        "params": {"inner": {"id": "willard", "params": {}}},
                    },
                    "budget_rounds": 64,
                },
            },
            channel="cd",
            workload={"kind": "fixed", "params": {"k": 4}},
        )
        assert result.engine == ENGINE_BATCH_PLAYER

    def test_engine_recorded_in_metadata(self):
        result = run()
        assert result.metadata["engine"] == result.engine
        assert result.metadata["kind"] == "uniform"


class TestWorkloads:
    def test_distribution_workload(self):
        result = run(
            protocol={"id": "sorted-probing", "params": {"one_shot": False}},
            prediction="truth",
            workload={
                "kind": "distribution",
                "params": {"family": "range_uniform_subset", "ranges": [2, 6]},
            },
        )
        assert result.success.rate > 0.9

    def test_bursty_workload_runs_batched(self):
        result = run(
            workload={
                "kind": "bursty",
                "params": {
                    "calm_rate": 0.004,
                    "burst_rate": 0.25,
                    "burst_arrival": 0.05,
                    "burst_departure": 0.2,
                },
            },
        )
        assert result.engine == ENGINE_BATCH_SCHEDULE
        assert result.success.trials == 120

    def test_trace_workload(self):
        result = run(workload={"kind": "trace", "params": {"ks": [4, 9, 17]}})
        assert result.success.rate > 0.9

    def test_unknown_family_and_kind(self):
        with pytest.raises(ScenarioError, match="family"):
            run(workload={"kind": "distribution", "params": {"family": "nope"}})
        with pytest.raises(ScenarioError, match="workload kind"):
            run(workload={"kind": "stochastic", "params": {}})


class TestValidation:
    def test_truth_prediction_needs_distribution_workload(self):
        with pytest.raises(ScenarioError, match="'truth'"):
            run(
                protocol={"id": "sorted-probing", "params": {}},
                prediction="truth",
            )

    def test_advice_on_uniform_protocol_rejected(self):
        with pytest.raises(ScenarioError, match="no advice"):
            run(advice={"function": "null", "bits": 0})

    def test_player_needs_fixed_workload(self):
        with pytest.raises(ScenarioError, match="'fixed'"):
            run(
                protocol={"id": "backoff", "params": {}},
                channel="cd",
                workload={
                    "kind": "distribution",
                    "params": {"family": "uniform"},
                },
            )

    def test_bad_parameter_values_surface_as_scenario_errors(self):
        """Value errors (not just unknown names) must stay inside the API."""
        with pytest.raises(ScenarioError, match="out of bounds"):
            run(
                workload={
                    "kind": "distribution",
                    "params": {"family": "range_uniform_subset", "ranges": [999]},
                }
            )
        with pytest.raises(ScenarioError, match="bursty"):
            run(
                workload={
                    "kind": "bursty",
                    "params": {
                        "calm_rate": 2.0,
                        "burst_rate": 0.2,
                        "burst_arrival": 0.1,
                        "burst_departure": 0.1,
                    },
                }
            )
        with pytest.raises(ScenarioError, match="'willard'"):
            run(
                protocol={"id": "willard", "params": {"repetitions": 2}},
                channel="cd",
            )
        with pytest.raises(ScenarioError, match="corruption"):
            run(
                protocol={"id": "backoff", "params": {}},
                channel="cd",
                advice={
                    "function": "null",
                    "bits": 0,
                    "corruption": {"model": "bit-flip", "probability": 7.0},
                },
            )

    def test_unknown_adversary_and_advice(self):
        with pytest.raises(ScenarioError, match="adversary"):
            run(protocol={"id": "backoff", "params": {}}, channel="cd", adversary="evil")
        with pytest.raises(ScenarioError, match="advice function"):
            run(
                protocol={"id": "backoff", "params": {}},
                channel="cd",
                advice={"function": "psychic", "bits": 1},
            )


class TestReproducibility:
    def test_spec_json_round_trip_reproduces_identical_result(self):
        """The headline contract: spec -> JSON -> spec -> identical result."""
        original_spec = ScenarioSpec.from_dict(
            spec_dict(
                protocol={"id": "sorted-probing", "params": {"one_shot": False}},
                prediction="truth",
                workload={
                    "kind": "distribution",
                    "params": {"family": "range_uniform_subset", "ranges": [2, 5, 8]},
                },
            )
        )
        first = run_scenario(original_spec)
        reloaded = ScenarioSpec.from_json(original_spec.to_json())
        second = run_scenario(reloaded)
        assert first == second  # elapsed_seconds is excluded from equality
        d1, d2 = first.to_dict(), second.to_dict()
        d1.pop("elapsed_seconds"), d2.pop("elapsed_seconds")
        assert d1 == d2

    def test_player_scenario_reproduces_from_json(self):
        data = spec_dict(
            protocol={"id": "deterministic-scan", "params": {"advice_bits": 3}},
            workload={"kind": "fixed", "params": {"k": 5}},
            advice={
                "function": "min-id-prefix",
                "bits": 3,
                "corruption": {"model": "bit-flip", "probability": 0.2},
            },
            max_rounds=200,
            trials=50,
            n=256,
        )
        first = run_scenario(ScenarioSpec.from_dict(data))
        second = run_scenario(
            ScenarioSpec.from_json(ScenarioSpec.from_dict(data).to_json())
        )
        assert first == second

    def test_shared_rng_matches_direct_estimator_stream(self):
        """run_scenario(spec, rng=...) consumes the stream like the estimator."""
        from repro.analysis.montecarlo import estimate_uniform_rounds
        from repro.channel.channel import without_collision_detection
        from repro.protocols.decay import DecayProtocol

        spec = ScenarioSpec.from_dict(spec_dict())
        shared = np.random.default_rng(123)
        via_scenario = run_scenario(spec, rng=shared)
        direct = estimate_uniform_rounds(
            DecayProtocol(1024),
            8,
            np.random.default_rng(123),
            channel=without_collision_detection(),
            trials=120,
            max_rounds=400,
            batch=None,
        )
        assert via_scenario.rounds == direct.rounds
        assert via_scenario.success == direct.success


class TestResultSerialization:
    def test_result_dict_round_trip(self):
        result = run()
        restored = ScenarioResult.from_dict(result.to_dict())
        assert restored == result

    def test_no_success_result_serializes_nan_as_null(self):
        # An impossible scenario: k=8 participants, decay first-round only.
        result = run(max_rounds=1, trials=20, workload={"kind": "fixed", "params": {"k": 700}})
        if result.any_successes:  # pragma: no cover - distribution guard
            pytest.skip("unexpected success at p=1/2, k=700")
        payload = result.to_dict()
        assert payload["rounds"]["mean"] is None
        restored = ScenarioResult.from_dict(payload)
        assert restored.rounds.count == 0
        assert np.isnan(restored.rounds.mean)

    def test_render_mentions_engine_and_success(self):
        text = run().render()
        assert "engine" in text and "success" in text and "batch-schedule" in text
