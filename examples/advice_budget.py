#!/usr/bin/env python3
"""Perfect advice: how far do b bits go?  (Paper Section 3 / Table 2.)

A deployment question: you can piggyback a few bits of scheduler hints on
a beacon - how much contention-resolution latency does each bit buy?

The paper answers with four tight bounds.  This example measures all four
protocols across the advice budget ``b`` and prints the measured rounds
next to the Theta-shapes from Table 2:

* deterministic, no-CD: ``n / 2^b`` (every bit halves the candidate scan);
* deterministic, CD: ``log n - b`` (every bit skips one descent level);
* randomized, no-CD: ``log n / 2^b`` (every bit halves the decay window);
* randomized, CD: ``log log n - b`` (every bit skips one search level).

Run:  python examples/advice_budget.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    MinIdPrefixAdvice,
    estimate_uniform_rounds,
    run_players,
    with_collision_detection,
    without_collision_detection,
)
from repro.core.advice import id_bit_width
from repro.lowerbounds.bounds import (
    table2_det_cd_upper,
    table2_det_nocd_upper,
    table2_rand_cd,
    table2_rand_nocd,
)
from repro.protocols import (
    DeterministicScanProtocol,
    DeterministicTreeDescentProtocol,
    TruncatedDecayProtocol,
    truncated_willard_for_count,
)

N_DET = 2**12   # deterministic scan at b=0 visits up to n ids
N_RAND = 2**16
TRIALS = 1200
SEED = 11


def deterministic_rows(rng: np.random.Generator) -> None:
    nocd = without_collision_detection()
    cd = with_collision_detection()
    width = id_bit_width(N_DET)
    # Worst-case participant sets (see tests/experiments for why).
    participants = frozenset({N_DET - 2, N_DET - 1})

    print(f"deterministic protocols, n = {N_DET} (worst-case adversary)")
    print(f"{'b':>3s}  {'scan rounds':>11s}  {'n/2^b':>8s}  "
          f"{'descent rounds':>14s}  {'log n - b + 1':>13s}")
    for b in range(0, width + 1, 2):
        scan = DeterministicScanProtocol(b)
        scan_result = run_players(
            scan, participants, N_DET, rng,
            channel=nocd, advice_function=MinIdPrefixAdvice(b),
            max_rounds=scan.worst_case_rounds(N_DET),
        )
        descent = DeterministicTreeDescentProtocol(b)
        descent_result = run_players(
            descent, participants, N_DET, rng,
            channel=cd, advice_function=MinIdPrefixAdvice(b),
            max_rounds=descent.worst_case_rounds(N_DET),
        )
        print(
            f"{b:3d}  {scan_result.rounds:11d}  "
            f"{table2_det_nocd_upper(N_DET, b):8.0f}  "
            f"{descent_result.rounds:14d}  "
            f"{table2_det_cd_upper(N_DET, b):13.0f}"
        )
    print()


def randomized_rows(rng: np.random.Generator) -> None:
    nocd = without_collision_detection()
    cd = with_collision_detection()
    k = 900  # the adversary's favourite size; advice adapts to it

    print(f"randomized protocols, n = {N_RAND}, k = {k} "
          f"(expected rounds over {TRIALS} trials)")
    print(f"{'b':>3s}  {'trunc decay':>11s}  {'log n/2^b':>9s}  "
          f"{'trunc willard':>13s}  {'loglog n - b':>12s}")
    for b in range(0, 5):
        decay_mean = estimate_uniform_rounds(
            TruncatedDecayProtocol.for_count(N_RAND, b, k), k, rng,
            channel=nocd, trials=TRIALS, max_rounds=4000,
        ).rounds.mean
        willard_mean = estimate_uniform_rounds(
            truncated_willard_for_count(N_RAND, b, k), k, rng,
            channel=cd, trials=TRIALS, max_rounds=4000,
        ).rounds.mean
        print(
            f"{b:3d}  {decay_mean:11.2f}  {table2_rand_nocd(N_RAND, b):9.2f}"
            f"  {willard_mean:13.2f}  {table2_rand_cd(N_RAND, b):12.2f}"
        )
    print()


def main() -> None:
    rng = np.random.default_rng(SEED)
    deterministic_rows(rng)
    randomized_rows(rng)
    print(
        "Reading: measured rounds track the Table 2 shapes - each advice\n"
        "bit halves the deterministic scan and the randomized decay window,\n"
        "and shaves one level off both collision-detector searches."
    )


if __name__ == "__main__":
    main()
