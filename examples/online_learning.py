#!/usr/bin/env python3
"""Online learning: the "improves for free" story, end to end.

The paper's introduction promises algorithms that "perform no worse than
our current optimal solutions, but ... improve 'for free' as the machine
learning models generating the predictions they leverage improve".  This
example runs that loop: a histogram learner starts knowing nothing
(uniform prediction = worst case), watches realised network sizes, and
hands its current prediction to the paper's sorted-probing protocol for
each contention-resolution instance.

Printed per phase of the run: the learner's divergence from the truth
(the Theorem 2.12 cost term) and the measured rounds vs the know-nothing
decay baseline and the clairvoyant oracle.

Run:  python examples/online_learning.py
"""

from __future__ import annotations

import numpy as np

from repro import HistogramLearner, SizeDistribution, run_online
from repro import without_collision_detection
from repro.analysis.textplot import text_plot

N = 2**16
INSTANCES = 600
SEED = 33


def main() -> None:
    rng = np.random.default_rng(SEED)
    truth = SizeDistribution.range_uniform_subset(
        N, [4, 11], name="two-regime"
    )
    learner = HistogramLearner(N, smoothing=0.5)
    report = run_online(
        lambda instance: truth,
        learner,
        without_collision_detection(),
        rng,
        instances=INSTANCES,
    )

    print(f"truth: {truth.name}, H(c(X)) = {truth.condensed_entropy():.2f} "
          f"bits; learner: additive-smoothed histogram")
    print()
    print(f"{'instances seen':>14s}  {'D_KL (bits)':>11s}  "
          f"{'learner rounds':>14s}  {'oracle':>7s}  {'decay':>6s}")
    window = INSTANCES // 6
    xs, divergence_curve, rounds_curve = [], [], []
    for start in range(0, INSTANCES, window):
        chunk = report.records[start : start + window]
        mean_rounds = float(np.mean([r.learner_rounds for r in chunk]))
        mean_oracle = float(np.mean([r.oracle_rounds for r in chunk]))
        mean_baseline = float(np.mean([r.baseline_rounds for r in chunk]))
        divergence = chunk[0].divergence_bits
        print(f"{start:>14d}  {divergence:>11.3f}  {mean_rounds:>14.2f}  "
              f"{mean_oracle:>7.2f}  {mean_baseline:>6.2f}")
        xs.append(start)
        divergence_curve.append(divergence)
        rounds_curve.append(mean_rounds)

    print()
    print(
        text_plot(
            {
                "D_KL (bits)": (xs, divergence_curve),
                "mean rounds": (xs, rounds_curve),
            },
            title="learning curve",
            x_label="instances observed",
            y_label="divergence / rounds",
        )
    )
    print(
        f"converged gap to the clairvoyant oracle over the last "
        f"{window} instances: "
        f"{report.learning_gap(window):+.2f} rounds/instance"
    )


if __name__ == "__main__":
    main()
