#!/usr/bin/env python3
"""IoT uplink scenario: a season of diurnal traffic with a drifting model.

A LoRa-style gateway serves up to ``n = 2^16`` sensors.  Active-device
counts follow a diurnal pattern (few at night, bursts at day), and the
gateway's predictor is re-fit periodically from observed history - so its
quality *drifts* between refits.  We simulate a season hour by hour:

1. each hour draws a true active count from the hour's distribution;
2. the gateway runs the paper's prediction protocols against the current
   (possibly stale) model;
3. every ``REFIT_HOURS`` the model snaps back to the truth.

The output shows latency (rounds to first successful uplink) over the
season, the cost spike when the workload shifts under a stale model, and
recovery at refit - the "improves for free as the model improves" story
from the paper's introduction, end to end.

Run:  python examples/iot_uplink.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CodeSearchProtocol,
    DecayProtocol,
    Prediction,
    SizeDistribution,
    SortedProbingProtocol,
    run_uniform,
    with_collision_detection,
    without_collision_detection,
)
from repro.analysis.metrics import Summary
from repro.infotheory.perturb import divergence_between, floor_support, shift_ranges

N = 2**16
HOURS = 24 * 14          # a fortnight, hourly slots
REFIT_HOURS = 24 * 7     # weekly model refits
DRIFT_AT_HOUR = 24 * 4   # day 4: a firmware rollout doubles night traffic
SEED = 20210726


def hour_distribution(hour: int, *, drifted: bool) -> SizeDistribution:
    """The true active-count distribution for the given hour of day."""
    time_of_day = hour % 24
    night = time_of_day < 6 or time_of_day >= 22
    if night:
        base = 6 if not drifted else 24  # rollout: chattier nights
        return SizeDistribution.bimodal(
            N, low_size=base, high_size=4 * base, low_weight=0.8
        )
    busy = 800 + 400 * (1 if 9 <= time_of_day <= 17 else 0)
    return SizeDistribution.bimodal(
        N, low_size=busy // 4, high_size=busy, low_weight=0.3
    )


def main() -> None:
    rng = np.random.default_rng(SEED)
    nocd = without_collision_detection()
    cd = with_collision_detection()

    model: dict[int, Prediction] = {}
    weekly_rounds: dict[str, list[int]] = {
        "decay": [], "sorted": [], "code": [],
    }
    spike_rounds: list[int] = []
    post_refit_rounds: list[int] = []

    for hour in range(HOURS):
        drifted = hour >= DRIFT_AT_HOUR
        truth = hour_distribution(hour, drifted=drifted)

        if hour % REFIT_HOURS == 0:
            # Weekly refit: every hour-slot's model relearns the current
            # truth.  Between refits the models go stale under drift.
            model.clear()
        if (hour % 24) not in model:
            model[hour % 24] = Prediction(
                floor_support(
                    hour_distribution(hour % 24, drifted=drifted), 1e-3
                )
            )
        prediction = model[hour % 24]

        k = truth.sample(rng)
        decay_result = run_uniform(
            DecayProtocol(N), k, rng, channel=nocd, max_rounds=50_000
        )
        sorted_result = run_uniform(
            SortedProbingProtocol(prediction, one_shot=False),
            k, rng, channel=nocd, max_rounds=50_000,
        )
        code_result = run_uniform(
            CodeSearchProtocol(prediction, one_shot=False),
            k, rng, channel=cd, max_rounds=50_000,
        )
        weekly_rounds["decay"].append(decay_result.rounds)
        weekly_rounds["sorted"].append(sorted_result.rounds)
        weekly_rounds["code"].append(code_result.rounds)

        # Score the drift story on the night slots where it bites.
        time_of_day = hour % 24
        night = time_of_day < 6 or time_of_day >= 22
        if night and DRIFT_AT_HOUR <= hour < REFIT_HOURS:
            spike_rounds.append(sorted_result.rounds)
        if night and REFIT_HOURS <= hour:
            post_refit_rounds.append(sorted_result.rounds)

    print(f"season: {HOURS} hourly slots, drift at hour {DRIFT_AT_HOUR}, "
          f"refit every {REFIT_HOURS}h")
    print()
    print(f"{'protocol':24s}  {'mean rounds':>11s}  {'p90':>6s}")
    for name, label in (
        ("decay", "decay (no model)"),
        ("sorted", "sorted probing (no-CD)"),
        ("code", "code search (CD)"),
    ):
        summary = Summary.from_samples(weekly_rounds[name])
        print(f"{label:24s}  {summary.mean:11.2f}  {summary.p90:6.1f}")

    stale = Summary.from_samples(spike_rounds)
    fresh = Summary.from_samples(post_refit_rounds)
    night_truth = hour_distribution(2, drifted=True)
    stale_model = hour_distribution(2, drifted=False)
    print()
    print(
        f"stale-model divergence on drifted nights: "
        f"{divergence_between(night_truth, floor_support(shift_ranges(stale_model, 0), 1e-3)):.2f} bits"
    )
    print(f"sorted probing during stale window : {stale.mean:.2f} mean rounds")
    print(f"sorted probing after weekly refit  : {fresh.mean:.2f} mean rounds")
    print()
    print(
        "The stale window costs extra rounds (the divergence term of\n"
        "Theorem 2.12); the refit recovers the low-latency regime without\n"
        "any protocol change - predictions improve, the algorithm improves."
    )


if __name__ == "__main__":
    main()
