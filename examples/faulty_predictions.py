#!/usr/bin/env python3
"""Graceful degradation: what a wrong predictor costs.

The paper's headline property (Theorems 2.12 / 2.16) is that prediction
error is charged *smoothly* through the KL divergence ``D_KL(c(X)‖c(Y))``:
a slightly wrong predictor costs a constant factor, and even a badly wrong
one only inflates the budget - it never breaks correctness.

This example fixes a true distribution and degrades the prediction in two
ways - unbiased mixing noise and systematic size bias (a predictor trained
before the network doubled... and doubled again) - measuring rounds and
divergence at each rung, for both channel models.

Run:  python examples/faulty_predictions.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CodeSearchProtocol,
    Prediction,
    SizeDistribution,
    SortedProbingProtocol,
    estimate_uniform_rounds,
    mix_with_uniform,
    shift_ranges,
    with_collision_detection,
    without_collision_detection,
)
from repro.analysis.textplot import text_plot
from repro.infotheory.perturb import divergence_between, floor_support

N = 2**16
TRIALS = 1500
SEED = 7


def build_ladder(truth: SizeDistribution):
    """Predictions of increasing wrongness, with finite divergence."""
    ladder = [("perfect", truth)]
    for epsilon in (0.2, 0.6):
        ladder.append((f"mix {epsilon:.0%}", mix_with_uniform(truth, epsilon)))
    for delta in (1, 2, 4):
        ladder.append(
            (
                f"biased x{2**delta}",
                floor_support(shift_ranges(truth, delta), 0.02),
            )
        )
    return ladder


def main() -> None:
    rng = np.random.default_rng(SEED)
    # Contiguous support so systematic bias degrades *gradually*: each
    # extra range of shift removes one range of overlap with the truth.
    truth = SizeDistribution.range_uniform_subset(
        N, [5, 6, 7, 8], name="4-contiguous"
    )
    entropy_bits = truth.condensed_entropy()
    nocd = without_collision_detection()
    cd = with_collision_detection()

    print(f"truth: {truth.name}, H(c(X)) = {entropy_bits:.2f} bits")
    print()
    header = (
        f"{'prediction':12s}  {'D_KL':>6s}  {'no-CD rounds':>12s}  "
        f"{'CD rounds':>9s}"
    )
    print(header)
    print("-" * len(header))

    divergences, nocd_means, cd_means = [], [], []
    for label, predicted in build_ladder(truth):
        divergence = divergence_between(truth, predicted)
        nocd_mean = estimate_uniform_rounds(
            SortedProbingProtocol(Prediction(predicted), one_shot=False),
            truth, rng, channel=nocd, trials=TRIALS, max_rounds=20_000,
        ).rounds.mean
        cd_mean = estimate_uniform_rounds(
            CodeSearchProtocol(Prediction(predicted), one_shot=False),
            truth, rng, channel=cd, trials=TRIALS, max_rounds=20_000,
        ).rounds.mean
        divergences.append(divergence)
        nocd_means.append(nocd_mean)
        cd_means.append(cd_mean)
        print(
            f"{label:12s}  {divergence:6.2f}  {nocd_mean:12.2f}  "
            f"{cd_mean:9.2f}"
        )

    print()
    print(
        text_plot(
            {
                "no-CD (sorted probing)": (divergences, nocd_means),
                "CD (code search)": (divergences, cd_means),
            },
            title="rounds vs prediction divergence",
            x_label="D_KL(c(X)||c(Y)) bits",
            y_label="mean rounds",
        )
    )
    print(
        "Every rung still solves the problem; cost grows with the\n"
        "divergence, exactly as Theorems 2.12/2.16 charge it."
    )


if __name__ == "__main__":
    main()
