#!/usr/bin/env python3
"""A guided tour of the lower-bound machinery (paper Sections 2.3-2.4).

The paper's most novel move is proving contention-resolution lower bounds
with *information theory*: a fast algorithm would yield a short code, and
Shannon forbids codes shorter than the entropy.  This example walks the
whole chain on concrete objects:

1. take the decay algorithm's schedule;
2. run **RF-Construction** (Algorithm 1) to get a range-finding sequence;
3. build the **target-distance code** from it, encode/decode every range;
4. check the **Source Coding Theorem** floor ``E[len] >= H`` and the
   Lemma 2.5 round floor ``E[Z] >= 2^H / (4 alpha log log n)``;
5. repeat for the collision-detection side: unfold Willard's search into
   the labelled tree, graft the canonical range tree, and code with paths.

Run:  python examples/lowerbound_tour.py
"""

from __future__ import annotations

from repro import SizeDistribution
from repro.infotheory.condense import num_ranges
from repro.lowerbounds import (
    SequenceTargetDistanceCode,
    TreeTargetDistanceCode,
    build_range_finding_tree,
    default_sequence_tolerance,
    default_tree_tolerance,
    rf_range_finder,
)
from repro.protocols import DecayProtocol, WillardProtocol, as_history_policy

N = 2**16
ALPHA = 2.0


def sequence_side(truth: SizeDistribution) -> None:
    condensed = truth.condense()
    entropy_bits = condensed.entropy()
    print("--- no-CD chain: schedule -> sequence -> code ---")
    schedule = DecayProtocol(N).schedule.cycled(4 * num_ranges(N))
    finder = rf_range_finder(schedule, N, alpha=ALPHA)
    print(f"RF-Construction: {len(finder)} slots, tolerance "
          f"{finder.tolerance:.1f} ranges "
          f"(= alpha * log log n, alpha={ALPHA})")

    code = SequenceTargetDistanceCode(finder)
    print("codewords (range -> bits):")
    for target in condensed.support():
        bits = code.encode(target)
        decoded, _ = code.decode(bits)
        assert decoded == target
        print(f"  range {target:2d} -> {bits}  "
              f"(solves at slot {finder.solve_time(target)})")

    expected_z = finder.expected_time(condensed)
    expected_len = code.expected_length(condensed)
    floor_rounds = 2.0**entropy_bits / (
        4.0 * default_sequence_tolerance(N, ALPHA)
    )
    print(f"H(c(X))            = {entropy_bits:.3f} bits")
    print(f"E[code length]     = {expected_len:.3f} bits  "
          f">= H  ({'OK' if expected_len >= entropy_bits else 'VIOLATION'})")
    print(f"E[range-find time] = {expected_z:.3f} slots  "
          f">= 2^H/(4a llog n) = {floor_rounds:.3f}  "
          f"({'OK' if expected_z >= floor_rounds else 'VIOLATION'})")
    print()


def tree_side(truth: SizeDistribution) -> None:
    condensed = truth.condense()
    entropy_bits = condensed.entropy()
    print("--- CD chain: history policy -> labelled tree -> path code ---")
    policy = as_history_policy(WillardProtocol(N, repetitions=1))
    tree = build_range_finding_tree(policy, N, extra_depth=2)
    tolerance = default_tree_tolerance(N)
    print(f"tree: {len(tree)} nodes, max depth {tree.max_depth()}, "
          f"tolerance {tolerance:.1f} ranges (= log log log n)")

    code = TreeTargetDistanceCode(tree, tolerance)
    print("codewords (range -> bits):")
    for target in condensed.support():
        bits = code.encode(target)
        decoded, _ = code.decode(bits)
        assert decoded == target
        path = tree.solve_path(target, tolerance)
        print(f"  range {target:2d} -> {bits}  (path {path!r}, "
              f"depth {len(path)})")

    expected_depth = tree.expected_depth(condensed, tolerance)
    expected_len = code.expected_length(condensed)
    print(f"H(c(X))        = {entropy_bits:.3f} bits")
    print(f"E[code length] = {expected_len:.3f} bits  >= H  "
          f"({'OK' if expected_len >= entropy_bits else 'VIOLATION'})")
    print(f"E[solve depth] = {expected_depth:.3f} edges  "
          "(Theorem 2.8 floors this at H/2 - O(llll n))")
    print()


def main() -> None:
    truth = SizeDistribution.range_uniform_subset(
        N, [2, 6, 10, 14], name="4-mode"
    )
    print(f"workload: {truth.name}, H(c(X)) = "
          f"{truth.condensed_entropy():.2f} bits over {num_ranges(N)} ranges")
    print()
    sequence_side(truth)
    tree_side(truth)
    print(
        "Both chains end at Shannon's floor: any uniform algorithm that\n"
        "solved contention resolution faster would compress below entropy."
    )


if __name__ == "__main__":
    main()
