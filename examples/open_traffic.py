#!/usr/bin/env python3
"""Open-system traffic: load vs tail latency for the paper's protocols.

The closed experiments measure rounds-to-success of one contention
batch; a deployed gateway instead serves a *stream* - requests arrive
continuously, queue while the protocol resolves earlier ones, and what
the operator feels is per-request sojourn time.  This example drives the
open-system subsystem end to end:

1. sweep a Poisson offered-load dial across decay (no-CD) and Willard
   (CD) and print each protocol's load -> p50/p99 latency curve - the
   hockey stick as load approaches service capacity;
2. swap the smooth stream for Zipf-hotspot batch arrivals at the same
   offered load and show what burstiness alone does to the tail;
3. add a reactive jammer and watch the same load point degrade;
4. push one point past saturation and compare retry policies: immediate
   rejoin melts down (the retry storm), capped backoff with shedding
   degrades gracefully.

Every run is reproducible from its seed, and each vectorized run is
bit-identical to the scalar reference loop.

Run:  python examples/open_traffic.py
"""

from __future__ import annotations

from repro.scenarios import (
    ArrivalSpec,
    ChannelSpec,
    OpenScenarioSpec,
    OpenSweep,
    run_open_scenario,
    run_open_sweep,
)
from repro.scenarios.spec import ProtocolSpec

N = 256
TRIALS = 64
ROUNDS = 768
WARMUP = 128
SEED = 20210726


def base_spec(protocol_id: str, *, cd: bool, rate: float) -> OpenScenarioSpec:
    return OpenScenarioSpec(
        name=f"{protocol_id}-open",
        protocol=ProtocolSpec(id=protocol_id),
        arrivals=ArrivalSpec(family="poisson", params={"rate": rate}),
        channel=ChannelSpec(collision_detection=cd),
        n=N,
        trials=TRIALS,
        rounds=ROUNDS,
        warmup=WARMUP,
        capacity=128,
        seed=SEED,
    )


def load_curves() -> None:
    print("=" * 72)
    print("1. Load -> latency curves (Poisson arrivals)")
    print("=" * 72)
    for protocol_id, cd, rates in (
        ("decay", False, [0.05, 0.1, 0.2, 0.3]),
        ("willard", True, [0.02, 0.05, 0.1, 0.15]),
    ):
        sweep = OpenSweep(
            base=base_spec(protocol_id, cd=cd, rate=rates[0]),
            grid={"arrivals.params.rate": rates},
        )
        result = run_open_sweep(sweep)
        kind = "CD" if cd else "no-CD"
        print(f"\n{protocol_id} ({kind}):")
        print(result.render())


def burstiness() -> None:
    print()
    print("=" * 72)
    print("2. Same offered load, bursty arrivals (Zipf-hotspot batches)")
    print("=" * 72)
    smooth = base_spec("decay", cd=False, rate=0.2)
    bursty = smooth.override(
        {
            "name": "decay-open-bursty",
            "arrivals": {
                "family": "zipf-hotspot",
                # rate * mean batch ~ 0.2 requests/round, like the
                # smooth stream - the tail difference is burstiness.
                "params": {"rate": 0.068, "alpha": 1.0, "max_batch": 8},
            },
        }
    )
    for spec in (smooth, bursty):
        result = run_open_scenario(spec)
        load = result.metadata["offered_load"]
        print(f"\n{spec.label()} (offered load {load:.3f}):")
        print(f"  {result.summary.render()}")


def jamming() -> None:
    print()
    print("=" * 72)
    print("3. One load point under a reactive jammer")
    print("=" * 72)
    clean = base_spec("willard", cd=True, rate=0.1)
    jammed = clean.override(
        {
            "name": "willard-open-jammed",
            "channel": {
                "collision_detection": True,
                "model": {
                    "name": "jam-reactive",
                    "params": {"budget": 200, "quiet_streak": 2},
                },
            },
        }
    )
    for spec in (clean, jammed):
        result = run_open_scenario(spec)
        model = result.metadata["channel_model"]
        print(f"\n{spec.label()} ({model}):")
        print(f"  {result.summary.render()}")


def retry_storm() -> None:
    print()
    print("=" * 72)
    print("4. Overload: retry storm vs graceful degradation")
    print("=" * 72)
    print(
        "\nDecay at twice its service capacity, small buffer, request"
        "\ntimeout.  'give-up' is the baseline: every timeout is a death."
        "\n'immediate' rejoins next round - each timed-out request comes"
        "\nstraight back, the backlog stays pinned at capacity, and"
        "\ngoodput *falls below the baseline* while p99 explodes: the"
        "\nclassic metastable retry storm (attempts >> arrivals)."
        "\n'backoff'+shedding spreads rejoins out and refuses work at"
        "\nhigh occupancy - goodput recovers most of the gap and the"
        "\ntail stays bounded, at the price of abandoning hopeless"
        "\nrequests once their retry budget runs out."
    )
    overloaded = base_spec("decay", cd=False, rate=0.6).override(
        {"name": "decay-open-overload", "capacity": 16, "timeout": 24}
    )
    policies = (
        ("give-up (baseline)", "give-up", "capacity"),
        ("immediate rejoin", "immediate", "capacity"),
        (
            "capped backoff + shed",
            {
                "kind": "backoff",
                "params": {"base": 2, "cap": 32, "jitter": 8, "budget": 4},
            },
            {"kind": "shed", "params": {"threshold": 0.4}},
        ),
    )
    for label, retry, admission in policies:
        spec = overloaded.override({"retry": retry, "admission": admission})
        result = run_open_scenario(spec)
        summary = result.summary
        attempts_ratio = summary.attempts / max(summary.arrivals, 1)
        print(f"\n{label}:")
        print(f"  {summary.render()}")
        print(
            f"  goodput={summary.throughput:.4f}/round  "
            f"attempts/arrival={attempts_ratio:.2f}"
        )


def main() -> None:
    load_curves()
    burstiness()
    jamming()
    retry_storm()


if __name__ == "__main__":
    main()
