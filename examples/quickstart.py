#!/usr/bin/env python3
"""Quickstart: contention resolution with a learned size prediction.

The scenario: a shared wireless channel with up to ``n = 65536`` possible
devices.  A predictor has learned that the number of *active* devices is
usually either "a handful" or "about a thousand" (a bimodal distribution).
We compare:

* decay [Bar-Yehuda et al.] - the classical no-CD baseline, knows nothing;
* sorted probing [paper, Section 2.5] - uses the predicted distribution;
* Willard's search [Willard 1986] - the classical CD baseline;
* code-class search [paper, Section 2.6] - prediction + collision detector.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CodeSearchProtocol,
    DecayProtocol,
    Prediction,
    SizeDistribution,
    SortedProbingProtocol,
    WillardProtocol,
    estimate_uniform_rounds,
    with_collision_detection,
    without_collision_detection,
)

N = 2**16
TRIALS = 2000
SEED = 42


def main() -> None:
    rng = np.random.default_rng(SEED)

    # The true world: mostly ~8 devices at night, ~1200 at peak.
    truth = SizeDistribution.bimodal(
        N, low_size=8, high_size=1200, low_weight=0.6, name="diurnal"
    )
    prediction = Prediction(truth)  # a perfect predictor, for starters
    budget = prediction.self_budget()

    print(f"workload: {truth.name}, H(c(X)) = {budget.entropy_bits:.3f} bits")
    print(f"theorem 2.12 budget (no-CD): 2^(2H) = "
          f"{budget.nocd_budget_rounds:.1f} rounds")
    print(f"theorem 2.16 budget (CD): ~(H+1)^2 = "
          f"{budget.cd_budget_rounds:.1f} rounds")
    print()

    nocd = without_collision_detection()
    cd = with_collision_detection()
    rows: list[tuple[str, str, float, float]] = []

    contenders = [
        ("decay (no prediction)", DecayProtocol(N), nocd),
        (
            "sorted probing (paper 2.5)",
            SortedProbingProtocol(prediction, one_shot=False, support_only=True),
            nocd,
        ),
        ("willard (no prediction)", WillardProtocol(N), cd),
        (
            "code search (paper 2.6)",
            CodeSearchProtocol(prediction, one_shot=False, support_only=True),
            cd,
        ),
    ]
    for name, protocol, channel in contenders:
        estimate = estimate_uniform_rounds(
            protocol, truth, rng, channel=channel, trials=TRIALS,
            max_rounds=10_000,
        )
        rows.append(
            (name, channel.kind, estimate.rounds.mean, estimate.rounds.p90)
        )

    width = max(len(row[0]) for row in rows)
    print(f"{'protocol'.ljust(width)}  channel  mean rounds  p90")
    print("-" * (width + 32))
    for name, kind, mean, p90 in rows:
        print(f"{name.ljust(width)}  {kind:7s}  {mean:11.2f}  {p90:.1f}")

    no_pred = rows[0][2] / rows[1][2]
    with_cd = rows[2][2] / rows[3][2]
    print()
    print(f"prediction speed-up without collision detection: {no_pred:.1f}x")
    print(f"prediction speed-up with collision detection:    {with_cd:.1f}x")


if __name__ == "__main__":
    main()
